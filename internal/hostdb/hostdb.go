// Package hostdb implements "System X": the operational host RDBMS that
// RAPID plugs into (paper §3). It is the single source of truth: a row
// store with SCN-stamped transactions and in-memory journals. Analytical
// queries are offloaded to RAPID cost-based; changes propagate to the
// loaded RAPID replicas through background query checkpointing; and when a
// query is not admissible (or RAPID fails) execution falls back to the
// host's own Volcano-style row engine — which doubles as the paper's
// baseline system in the Fig 14/16 experiments.
package hostdb

import (
	"fmt"
	"sync"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/obs"
	"rapid/internal/qcache"
	"rapid/internal/sched"
	"rapid/internal/storage"
)

// Database is the host RDBMS instance.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*HostTable
	scn    uint64

	metrics *obs.Registry

	// qjournal is the fleet query journal (bounded completion ring) and
	// active the live in-flight query set / QueryID authority. An attached
	// cluster tray shares both, so the fleet has one ID space and one
	// journal. ("Journal" elsewhere in this package means a table's change
	// journal for RAPID propagation — an unrelated mechanism.)
	qjournal *obs.Journal
	active   *obs.ActiveSet

	// sched is the shared-SoC scheduler every offloaded query of this
	// database executes on: one pool of virtual dpCores, admission control
	// and work-unit-granular multiplexing across concurrent queries.
	sched *sched.Scheduler

	// qcache is the two-tier query cache (DESIGN.md §10), nil until
	// EnableQueryCache. An attached cluster tray shares it, so host and
	// distributed executions of the same template hit one store.
	qcache *qcache.Cache

	stopCheckpointer chan struct{}
}

// EnableQueryCache installs a two-tier query cache (plan + result) on the
// database and returns it. Cache metrics land in the database registry
// unless the config carries its own. Idempotent per database: a second
// call replaces the cache (dropping all entries).
func (db *Database) EnableQueryCache(cfg qcache.Config) *qcache.Cache {
	if cfg.Metrics == nil {
		cfg.Metrics = db.metrics
	}
	qcache.Describe(cfg.Metrics)
	c := qcache.New(cfg)
	db.mu.Lock()
	db.qcache = c
	db.mu.Unlock()
	return c
}

// QueryCache returns the installed query cache, or nil when caching is off.
func (db *Database) QueryCache() *qcache.Cache {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.qcache
}

// New creates an empty database with its own metrics registry.
func New() *Database {
	return NewWithMetrics(nil)
}

// NewWithMetrics creates an empty database sharing the given metrics
// registry (nil allocates a fresh one) and a default-configured scheduler.
func NewWithMetrics(reg *obs.Registry) *Database {
	return NewWithConfig(reg, sched.Config{})
}

// NewWithConfig creates an empty database with an explicit shared-SoC
// scheduler configuration. The scheduler's metrics land in the database's
// registry unless the config carries its own.
func NewWithConfig(reg *obs.Registry, cfg sched.Config) *Database {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = reg
	}
	return &Database{
		tables:   make(map[string]*HostTable),
		metrics:  reg,
		qjournal: obs.NewJournal(0),
		active:   obs.NewActiveSet(),
		sched:    sched.New(cfg),
	}
}

// Metrics returns the database's metrics registry.
func (db *Database) Metrics() *obs.Registry { return db.metrics }

// QueryJournal returns the database's query journal: the bounded ring of
// per-query completion records with cumulative outcome counters and JSONL
// export.
func (db *Database) QueryJournal() *obs.Journal { return db.qjournal }

// Active returns the live query set (the QueryID authority shared with an
// attached tray).
func (db *Database) Active() *obs.ActiveSet { return db.active }

// ActiveQueries returns a snapshot of the in-flight queries, sorted by
// QueryID.
func (db *Database) ActiveQueries() []obs.ActiveQuery { return db.active.Snapshot() }

// CancelQuery cancels the in-flight query with the given ID. It returns
// false when no such query is running. The canceled query returns
// context.Canceled to its caller and journals a "canceled" outcome.
func (db *Database) CancelQuery(id uint64) bool { return db.active.Cancel(id) }

// Scheduler returns the database's shared-SoC scheduler (never nil), for
// configuration inspection and tests that need to occupy admission slots.
func (db *Database) Scheduler() *sched.Scheduler { return db.sched }

// Close stops the database's background machinery: the checkpointer and the
// shared scheduler's worker pool. In-flight queries fail with sched.ErrClosed.
func (db *Database) Close() {
	db.StopBackgroundCheckpointer()
	db.sched.Close()
}

// ServeTelemetry starts an opt-in HTTP exporter for this database's
// observability surface on addr: Prometheus text on /metrics, the live
// active-query table plus recent journal records on /debug/queries,
// liveness on /healthz. Close the returned server to stop it.
func (db *Database) ServeTelemetry(addr string) (*obs.TelemetryServer, error) {
	return db.ServeTelemetryWith(addr, false)
}

// ServeTelemetryWith is ServeTelemetry with the Go runtime profiles
// (/debug/pprof/*) optionally exposed alongside.
func (db *Database) ServeTelemetryWith(addr string, enablePprof bool) (*obs.TelemetryServer, error) {
	return obs.ServeTelemetryWith(addr, obs.TelemetryConfig{
		Registry:    db.metrics,
		Active:      db.active,
		Journal:     db.qjournal,
		EnablePprof: enablePprof,
	})
}

// checkpointLagGauge tracks journal entries not yet propagated to RAPID.
// Updated incrementally at every journal mutation: the obvious recompute
// via PendingJournal would need the table lock the mutators already hold.
func (db *Database) checkpointLagGauge() *obs.Gauge {
	return db.metrics.Gauge("hostdb_checkpoint_lag_entries")
}

// HostTable is one row-store table plus its RAPID replica state.
type HostTable struct {
	name   string
	schema *storage.Schema
	dicts  []*encoding.Dict
	scales []int8

	mu      sync.RWMutex
	rows    [][]int64
	journal []journalEntry // changes not yet propagated to RAPID
	mutSCN  uint64         // SCN of the last row mutation (0 if never mutated)

	rapid *storage.Table // loaded replica; nil until LOAD
}

// journalEntry is one pending change for RAPID propagation. Exactly one of
// the fields is active.
type journalEntry struct {
	scn    uint64
	insert []int64
	delRow int // -1 when unused
	updRow int // -1 when unused
	updCol int
	updVal int64
}

// NextSCN advances and returns the system change number.
func (db *Database) NextSCN() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scn++
	return db.scn
}

// CurrentSCN returns the latest SCN.
func (db *Database) CurrentSCN() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scn
}

// CreateTable registers a new table.
func (db *Database) CreateTable(name string, schema *storage.Schema) (*HostTable, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("hostdb: table %q exists", name)
	}
	t := &HostTable{name: name, schema: schema}
	t.dicts = make([]*encoding.Dict, schema.NumCols())
	t.scales = make([]int8, schema.NumCols())
	for i := 0; i < schema.NumCols(); i++ {
		def := schema.Col(i)
		t.scales[i] = def.Type.Scale
		if def.Type.Kind == coltypes.KindString {
			t.dicts[i] = encoding.NewDict()
		}
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (db *Database) Table(name string) (*HostTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("hostdb: no table %q", name)
}

// Name returns the table name.
func (t *HostTable) Name() string { return t.name }

// Schema returns the table schema.
func (t *HostTable) Schema() *storage.Schema { return t.schema }

// Rows returns the current row count.
func (t *HostTable) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rapid returns the loaded RAPID replica, or nil.
func (t *HostTable) Rapid() *storage.Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rapid
}

// Dicts returns the table's per-column dictionaries (nil for non-string
// columns). The tray loader shares them into every node shard so encoded
// values compare across nodes.
func (t *HostTable) Dicts() []*encoding.Dict { return t.dicts }

// MutationSCN returns the SCN of the table's last row mutation (0 if the
// table was never mutated). Shard replicas loaded at an older SCN are stale.
func (t *HostTable) MutationSCN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mutSCN
}

// LiveValues decodes the current live rows (tombstones skipped) into fresh
// value slices — the scan feeding a tray shard load.
func (t *HostTable) LiveValues() [][]storage.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]storage.Value, 0, len(t.rows))
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		vals := make([]storage.Value, t.schema.NumCols())
		for c := range vals {
			vals[c] = t.DecodeValue(c, row[c])
		}
		out = append(out, vals)
	}
	return out
}

// encodeRow converts logical values to the fixed-width integer row.
func (t *HostTable) encodeRow(vals []storage.Value) ([]int64, error) {
	if len(vals) != t.schema.NumCols() {
		return nil, fmt.Errorf("hostdb: row has %d values, want %d", len(vals), t.schema.NumCols())
	}
	row := make([]int64, len(vals))
	for c, v := range vals {
		def := t.schema.Col(c)
		if v.Kind != def.Type.Kind {
			return nil, fmt.Errorf("hostdb: column %s expects %v, got %v", def.Name, def.Type.Kind, v.Kind)
		}
		switch def.Type.Kind {
		case coltypes.KindString:
			row[c] = int64(t.dicts[c].Add(v.Str))
		case coltypes.KindDecimal:
			u, ok := v.Dec.Rescale(t.scales[c])
			if !ok {
				return nil, fmt.Errorf("hostdb: decimal %s does not fit scale %d", v.Dec, t.scales[c])
			}
			row[c] = u
		default:
			row[c] = v.Int
		}
	}
	return row, nil
}

// DecodeValue renders an encoded cell.
func (t *HostTable) DecodeValue(col int, enc int64) storage.Value {
	def := t.schema.Col(col)
	switch def.Type.Kind {
	case coltypes.KindString:
		return storage.StrValue(t.dicts[col].Value(int32(enc)))
	case coltypes.KindDecimal:
		return storage.DecValue(encoding.Decimal{Unscaled: enc, Scale: t.scales[col]})
	case coltypes.KindDate:
		return storage.Value{Kind: coltypes.KindDate, Int: enc}
	case coltypes.KindBool:
		return storage.BoolValue(enc != 0)
	default:
		return storage.IntValue(enc)
	}
}

// Insert appends rows transactionally: the host row store is updated and a
// journal entry records the change for RAPID propagation.
func (db *Database) Insert(table string, rows [][]storage.Value) (uint64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	scn := db.NextSCN()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mutSCN = scn
	journaled := 0
	defer func() { db.checkpointLagGauge().Add(int64(journaled)) }()
	for _, vals := range rows {
		enc, err := t.encodeRow(vals)
		if err != nil {
			return 0, err
		}
		t.rows = append(t.rows, enc)
		if t.rapid != nil {
			t.journal = append(t.journal, journalEntry{scn: scn, insert: enc, delRow: -1, updRow: -1})
			journaled++
		}
	}
	return scn, nil
}

// Update changes one cell of a row (by host row index).
func (db *Database) Update(table string, row, col int, val storage.Value) (uint64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	scn := db.NextSCN()
	t.mu.Lock()
	defer t.mu.Unlock()
	if row < 0 || row >= len(t.rows) {
		return 0, fmt.Errorf("hostdb: row %d out of range", row)
	}
	t.mutSCN = scn
	tmp := make([]storage.Value, t.schema.NumCols())
	for c := range tmp {
		tmp[c] = t.DecodeValue(c, t.rows[row][c])
	}
	tmp[col] = val
	enc, err := t.encodeRow(tmp)
	if err != nil {
		return 0, err
	}
	t.rows[row][col] = enc[col]
	if t.rapid != nil {
		t.journal = append(t.journal, journalEntry{scn: scn, delRow: -1, updRow: row, updCol: col, updVal: enc[col]})
		db.checkpointLagGauge().Add(1)
	}
	return scn, nil
}

// Delete removes a row by host row index. The host row store swaps-removes;
// the journal records the logical delete for RAPID.
func (db *Database) Delete(table string, row int) (uint64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	scn := db.NextSCN()
	t.mu.Lock()
	defer t.mu.Unlock()
	if row < 0 || row >= len(t.rows) {
		return 0, fmt.Errorf("hostdb: row %d out of range", row)
	}
	t.mutSCN = scn
	if t.rapid != nil {
		t.journal = append(t.journal, journalEntry{scn: scn, delRow: row, updRow: -1})
		db.checkpointLagGauge().Add(1)
	}
	// Tombstone rather than compact so journal row indices stay stable.
	t.rows[row] = nil
	return scn, nil
}

// LoadOptions tunes the LOAD command.
type LoadOptions struct {
	Partitions   int
	PartitionKey int
	ChunkRows    int
	TryRLE       bool
	// ScanThreads is the degree of parallelism of the load scan (§4.4).
	ScanThreads int
}

// Load executes the "LOAD" command (§4.4): scan threads cooperatively read
// the host rows and a RAPID base table is built from them. After Load the
// table's journal is empty and the replica is current.
func (db *Database) Load(table string, opts LoadOptions) (*storage.Table, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	if opts.ScanThreads <= 0 {
		opts.ScanThreads = 4
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Scan threads decode row ranges in parallel into value buffers
	// (reading "disk blocks" directly — here, the row store slices).
	n := len(t.rows)
	decoded := make([][]storage.Value, n)
	var wg sync.WaitGroup
	chunk := (n + opts.ScanThreads - 1) / opts.ScanThreads
	for w := 0; w < opts.ScanThreads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if t.rows[i] == nil {
					continue // tombstone
				}
				vals := make([]storage.Value, t.schema.NumCols())
				for c := range vals {
					vals[c] = t.DecodeValue(c, t.rows[i][c])
				}
				decoded[i] = vals
			}
		}(lo, hi)
	}
	wg.Wait()

	b := storage.NewTableBuilder(t.name, t.schema, storage.BuildOptions{
		Partitions:   opts.Partitions,
		PartitionKey: opts.PartitionKey,
		ChunkRows:    opts.ChunkRows,
		TryRLE:       opts.TryRLE,
	})
	for _, vals := range decoded {
		if vals == nil {
			continue
		}
		if err := b.Append(vals); err != nil {
			return nil, err
		}
	}
	rapid, err := b.Build()
	if err != nil {
		return nil, err
	}
	t.rapid = rapid
	db.checkpointLagGauge().Add(-int64(len(t.journal)))
	t.journal = nil
	return rapid, nil
}

// PendingJournal returns the number of unpropagated journal entries.
func (t *HostTable) PendingJournal() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.journal)
}

// Checkpoint propagates all pending journal entries to the RAPID replica as
// one SCN-stamped update unit — the query checkpointing of §3.3.
func (db *Database) Checkpoint(table string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rapid == nil || len(t.journal) == 0 {
		return nil
	}
	// One UU per SCN preserves versioning.
	start := 0
	for start < len(t.journal) {
		scn := t.journal[start].scn
		end := start
		uu := storage.UpdateUnit{SCN: scn}
		for end < len(t.journal) && t.journal[end].scn == scn {
			e := t.journal[end]
			switch {
			case e.insert != nil:
				vals := make([]storage.Value, t.schema.NumCols())
				for c, enc := range e.insert {
					vals[c] = t.DecodeValue(c, enc)
				}
				uu.Inserts = append(uu.Inserts, vals)
			case e.delRow >= 0:
				if ref, ok := rapidRowRef(t.rapid, e.delRow); ok {
					uu.Deletes = append(uu.Deletes, ref)
				}
			case e.updRow >= 0:
				if ref, ok := rapidRowRef(t.rapid, e.updRow); ok {
					uu.Patches = append(uu.Patches, storage.CellPatch{
						Ref: ref, Col: e.updCol, Val: t.DecodeValue(e.updCol, e.updVal),
					})
				}
			}
			end++
		}
		if err := t.rapid.Tracker().Apply(uu); err != nil {
			return fmt.Errorf("hostdb: checkpoint %s: %w", table, err)
		}
		start = end
	}
	db.checkpointLagGauge().Add(-int64(len(t.journal)))
	db.metrics.Counter("hostdb_checkpoints_total").Inc()
	t.journal = nil
	return nil
}

// rapidRowRef maps a host row index to the RAPID base row position. Valid
// while the replica was loaded with the same row order and a single
// partition layout per builder defaults.
func rapidRowRef(rt *storage.Table, hostRow int) (storage.RowRef, bool) {
	remaining := hostRow
	for p := 0; p < rt.NumPartitions(); p++ {
		part := rt.Partition(p)
		for c := 0; c < part.NumChunks(); c++ {
			rows := part.Chunk(c).Rows()
			if remaining < rows {
				return storage.RowRef{Part: p, Chunk: c, Row: remaining}, true
			}
			remaining -= rows
		}
	}
	return storage.RowRef{}, false
}

// CheckpointAll checkpoints every loaded table.
func (db *Database) CheckpointAll() error {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	for _, n := range names {
		if err := db.Checkpoint(n); err != nil {
			return err
		}
	}
	return nil
}
