package hostdb

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/plan"
)

// The System X execution engine (paper §3.2): pull-based, row-at-a-time
// iterators implementing allocate()/start()/fetch()/close()/release().
// This is the architecture RAPID's vectorized columnar engine is compared
// against in the software-only experiment (Fig 16): interpretation overhead
// per row, hash joins through generic maps, no DMEM locality.

// Iterator is the Volcano operator interface.
type Iterator interface {
	Allocate()
	Start() error
	Fetch() ([]int64, bool, error)
	Close()
	Release()
}

// BuildIterator compiles a logical plan into a host iterator tree. The
// database resolves plan.Scan nodes to its row tables by name.
func (db *Database) BuildIterator(n plan.Node) (Iterator, error) {
	switch node := n.(type) {
	case *plan.Scan:
		t, err := db.Table(node.Table.Name())
		if err != nil {
			return nil, err
		}
		return &scanIter{t: t, cols: node.Cols}, nil
	case *plan.Filter:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &filterIter{in: in, pred: node.Pred, fields: node.Input.Schema()}, nil
	case *plan.Project:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &projectIter{in: in, exprs: node.Exprs, fields: node.Input.Schema()}, nil
	case *plan.Join:
		l, err := db.BuildIterator(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := db.BuildIterator(node.Right)
		if err != nil {
			return nil, err
		}
		return &joinIter{
			typ: node.Type, left: l, right: r,
			lk: node.LeftKeys, rk: node.RightKeys,
			rightWidth: len(node.Right.Schema()),
		}, nil
	case *plan.GroupBy:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &groupIter{in: in, keys: node.Keys, aggs: node.Aggs, fields: node.Input.Schema()}, nil
	case *plan.Sort:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &sortIter{in: in, keys: node.Keys, fields: node.Input.Schema()}, nil
	case *plan.Limit:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, k: node.K}, nil
	case *plan.SetOp:
		l, err := db.BuildIterator(node.Left)
		if err != nil {
			return nil, err
		}
		r, err := db.BuildIterator(node.Right)
		if err != nil {
			return nil, err
		}
		return &setopIter{left: l, right: r, kind: node.Kind}, nil
	case *plan.Window:
		in, err := db.BuildIterator(node.Input)
		if err != nil {
			return nil, err
		}
		return &windowIter{in: in, spec: node}, nil
	}
	return nil, fmt.Errorf("hostdb: unsupported plan node %T", n)
}

// Drain runs an iterator to completion through the full protocol.
func Drain(it Iterator) ([][]int64, error) {
	return DrainCtx(context.Background(), it)
}

// drainCheckRows is how many rows DrainCtx fetches between cancellation
// checks — the host engine's analogue of the QEF's per-tile check.
const drainCheckRows = 1024

// DrainCtx is Drain observing a context: a canceled or expired ctx stops the
// row loop within drainCheckRows rows and returns ctx.Err().
func DrainCtx(ctx context.Context, it Iterator) ([][]int64, error) {
	it.Allocate()
	if err := it.Start(); err != nil {
		return nil, err
	}
	var out [][]int64
	for {
		if len(out)%drainCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row, ok, err := it.Fetch()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	it.Close()
	it.Release()
	return out, nil
}

// --- scan --------------------------------------------------------------------

type scanIter struct {
	t    *HostTable
	cols []int
	pos  int
}

func (s *scanIter) Allocate()    {}
func (s *scanIter) Close()       {}
func (s *scanIter) Release()     {}
func (s *scanIter) Start() error { s.pos = 0; return nil }

func (s *scanIter) Fetch() ([]int64, bool, error) {
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	for s.pos < len(s.t.rows) {
		src := s.t.rows[s.pos]
		s.pos++
		if src == nil {
			continue // tombstone
		}
		row := make([]int64, len(s.cols))
		for i, c := range s.cols {
			row[i] = src[c]
		}
		return row, true, nil
	}
	return nil, false, nil
}

// --- expression / predicate interpretation ------------------------------------

func scaleOfT(t coltypes.Type) int8 {
	if t.Kind == coltypes.KindDecimal {
		return t.Scale
	}
	return 0
}

// evalExpr interprets e over a row; the result carries scale(e.Type()).
func evalExpr(e plan.Expr, row []int64) int64 {
	switch ex := e.(type) {
	case *plan.ColRef:
		return row[ex.Idx]
	case *plan.Const:
		return ex.Val
	case *plan.Arith:
		l := evalExpr(ex.L, row)
		r := evalExpr(ex.R, row)
		ls, rs := scaleOfT(ex.L.Type()), scaleOfT(ex.R.Type())
		switch ex.Op {
		case plan.Add, plan.Sub:
			target := scaleOfT(ex.T)
			l = rescaleVal(l, ls, target)
			r = rescaleVal(r, rs, target)
			if ex.Op == plan.Add {
				return l + r
			}
			return l - r
		case plan.Mul:
			return l * r
		default: // Div at DivScale
			if r == 0 {
				return 0
			}
			adj := int(plan.DivScale) - int(ls) + int(rs)
			switch {
			case adj > 0:
				return l * encoding.Pow10(adj) / r
			case adj < 0:
				return l / encoding.Pow10(-adj) / r
			default:
				return l / r
			}
		}
	case *plan.CaseExpr:
		var arm plan.Expr
		if evalPredRow(ex.Cond, row, nil) {
			arm = ex.Then
		} else {
			arm = ex.Else
		}
		v := evalExpr(arm, row)
		return rescaleVal(v, scaleOfT(arm.Type()), scaleOfT(ex.T))
	}
	panic(fmt.Sprintf("hostdb: unsupported expression %T", e))
}

func rescaleVal(v int64, from, to int8) int64 {
	switch {
	case from == to:
		return v
	case to > from:
		return v * encoding.Pow10(int(to-from))
	default:
		return v / encoding.Pow10(int(from-to))
	}
}

// dictVal decodes a dictionary code, rendering out-of-range codes as the
// empty string. In the NULL-free engine a left-outer join pads unmatched
// probe rows with code 0, which an empty build-side dictionary cannot
// decode; the padding compares like ” everywhere.
func dictVal(d *encoding.Dict, code int64) string {
	if code < 0 || code >= int64(d.Len()) {
		return ""
	}
	return d.Value(int32(code))
}

// strOf renders a string-typed expression's value for comparisons.
func strOf(e plan.Expr, row []int64) (string, bool) {
	switch ex := e.(type) {
	case *plan.ColRef:
		if ex.T.Kind == coltypes.KindString && ex.Dict != nil {
			return dictVal(ex.Dict, row[ex.Idx]), true
		}
	case *plan.Const:
		if ex.T.Kind == coltypes.KindString {
			return ex.Str, true
		}
	}
	return "", false
}

func isStringExpr(e plan.Expr) bool { return e.Type().Kind == coltypes.KindString }

// evalPredRow interprets a predicate over a row. fields is unused but kept
// for future schema-sensitive predicates.
func evalPredRow(p plan.Pred, row []int64, fields []plan.Field) bool {
	switch pr := p.(type) {
	case *plan.Cmp:
		if isStringExpr(pr.L) || isStringExpr(pr.R) {
			ls, lok := strOf(pr.L, row)
			rs, rok := strOf(pr.R, row)
			if !lok || !rok {
				return false
			}
			return cmpStrings(pr.Op, ls, rs)
		}
		ls, rs := scaleOfT(pr.L.Type()), scaleOfT(pr.R.Type())
		target := ls
		if rs > target {
			target = rs
		}
		l := rescaleVal(evalExpr(pr.L, row), ls, target)
		r := rescaleVal(evalExpr(pr.R, row), rs, target)
		return cmpInts(pr.Op, l, r)
	case *plan.BetweenPred:
		s := scaleOfT(pr.E.Type())
		v := evalExpr(pr.E, row)
		lo := rescaleVal(evalExpr(pr.Lo, row), scaleOfT(pr.Lo.Type()), s)
		hi := rescaleVal(evalExpr(pr.Hi, row), scaleOfT(pr.Hi.Type()), s)
		return v >= lo && v <= hi
	case *plan.InPred:
		if isStringExpr(pr.E) {
			s, ok := strOf(pr.E, row)
			if !ok {
				return false
			}
			for _, c := range pr.List {
				if c.Str == s {
					return true
				}
			}
			return false
		}
		v := evalExpr(pr.E, row)
		s := scaleOfT(pr.E.Type())
		for _, c := range pr.List {
			if cv, ok := (encoding.Decimal{Unscaled: c.Val, Scale: scaleOfT(c.T)}).Rescale(s); ok && cv == v {
				return true
			}
		}
		return false
	case *plan.LikePred:
		s, ok := strOf(pr.E, row)
		if !ok {
			return false
		}
		var m bool
		switch pr.Kind {
		case plan.LikePrefix:
			m = strings.HasPrefix(s, pr.Pattern)
		case plan.LikeSuffix:
			m = strings.HasSuffix(s, pr.Pattern)
		case plan.LikeContains:
			m = strings.Contains(s, pr.Pattern)
		default:
			m = s == pr.Pattern
		}
		return m != pr.Negate
	case *plan.AndPred:
		for _, s := range pr.Preds {
			if !evalPredRow(s, row, fields) {
				return false
			}
		}
		return true
	case *plan.OrPred:
		for _, s := range pr.Preds {
			if evalPredRow(s, row, fields) {
				return true
			}
		}
		return false
	case *plan.NotPred:
		return !evalPredRow(pr.P, row, fields)
	}
	panic(fmt.Sprintf("hostdb: unsupported predicate %T", p))
}

func cmpInts(op plan.CmpOp, a, b int64) bool {
	switch op {
	case plan.EQ:
		return a == b
	case plan.NE:
		return a != b
	case plan.LT:
		return a < b
	case plan.LE:
		return a <= b
	case plan.GT:
		return a > b
	default:
		return a >= b
	}
}

func cmpStrings(op plan.CmpOp, a, b string) bool {
	switch op {
	case plan.EQ:
		return a == b
	case plan.NE:
		return a != b
	case plan.LT:
		return a < b
	case plan.LE:
		return a <= b
	case plan.GT:
		return a > b
	default:
		return a >= b
	}
}

// --- filter / project ----------------------------------------------------------

type filterIter struct {
	in     Iterator
	pred   plan.Pred
	fields []plan.Field
}

func (f *filterIter) Allocate()    { f.in.Allocate() }
func (f *filterIter) Start() error { return f.in.Start() }
func (f *filterIter) Close()       { f.in.Close() }
func (f *filterIter) Release()     { f.in.Release() }

func (f *filterIter) Fetch() ([]int64, bool, error) {
	for {
		row, ok, err := f.in.Fetch()
		if !ok || err != nil {
			return nil, false, err
		}
		if evalPredRow(f.pred, row, f.fields) {
			return row, true, nil
		}
	}
}

type projectIter struct {
	in     Iterator
	exprs  []plan.Expr
	fields []plan.Field
}

func (p *projectIter) Allocate()    { p.in.Allocate() }
func (p *projectIter) Start() error { return p.in.Start() }
func (p *projectIter) Close()       { p.in.Close() }
func (p *projectIter) Release()     { p.in.Release() }

func (p *projectIter) Fetch() ([]int64, bool, error) {
	row, ok, err := p.in.Fetch()
	if !ok || err != nil {
		return nil, false, err
	}
	out := make([]int64, len(p.exprs))
	for i, e := range p.exprs {
		out[i] = evalExpr(e, row)
	}
	return out, true, nil
}

// --- join ----------------------------------------------------------------------

type joinIter struct {
	typ        plan.JoinType
	left       Iterator
	right      Iterator
	lk, rk     []int
	rightWidth int

	table   map[string][][]int64
	pending [][]int64
	started bool
}

func (j *joinIter) Allocate() {
	j.left.Allocate()
	j.right.Allocate()
}

func (j *joinIter) Start() error {
	if err := j.left.Start(); err != nil {
		return err
	}
	// Build the hash table on the right input.
	rows, err := Drain(j.right)
	if err != nil {
		return err
	}
	j.table = make(map[string][][]int64)
	for _, r := range rows {
		k := joinKey(r, j.rk)
		j.table[k] = append(j.table[k], r)
	}
	j.started = true
	return nil
}

func joinKey(row []int64, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		v := row[c]
		for b := 0; b < 8; b++ {
			sb.WriteByte(byte(v >> (8 * b)))
		}
	}
	return sb.String()
}

func (j *joinIter) Fetch() ([]int64, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := j.left.Fetch()
		if !ok || err != nil {
			return nil, false, err
		}
		matches := j.table[joinKey(lrow, j.lk)]
		switch j.typ {
		case plan.SemiJoin:
			if len(matches) > 0 {
				return lrow, true, nil
			}
		case plan.AntiJoin:
			if len(matches) == 0 {
				return lrow, true, nil
			}
		case plan.LeftOuterJoin:
			if len(matches) == 0 {
				out := append(append([]int64(nil), lrow...), make([]int64, j.rightWidth)...)
				return out, true, nil
			}
			for _, m := range matches {
				j.pending = append(j.pending, append(append([]int64(nil), lrow...), m...))
			}
		default:
			for _, m := range matches {
				j.pending = append(j.pending, append(append([]int64(nil), lrow...), m...))
			}
		}
	}
}

func (j *joinIter) Close() {
	j.left.Close()
	j.table = nil
}

func (j *joinIter) Release() {
	j.left.Release()
	j.right.Release()
}

// --- group by --------------------------------------------------------------------

type groupIter struct {
	in     Iterator
	keys   []plan.Expr
	aggs   []plan.AggExpr
	fields []plan.Field

	out [][]int64
	pos int
}

type hostAgg struct {
	sum, min, max, count int64
}

func (g *groupIter) Allocate() { g.in.Allocate() }

func (g *groupIter) Start() error {
	rows, err := Drain(g.in)
	if err != nil {
		return err
	}
	type groupState struct {
		keyVals []int64
		aggs    []hostAgg
	}
	groups := map[string]*groupState{}
	var order []string
	for _, row := range rows {
		keyVals := make([]int64, len(g.keys))
		for i, k := range g.keys {
			keyVals[i] = evalExpr(k, row)
		}
		kk := joinKey(keyVals, allCols(len(keyVals)))
		st, ok := groups[kk]
		if !ok {
			st = &groupState{keyVals: keyVals, aggs: make([]hostAgg, len(g.aggs))}
			for i := range st.aggs {
				st.aggs[i].min = 1<<63 - 1
				st.aggs[i].max = -(1 << 63)
			}
			groups[kk] = st
			order = append(order, kk)
		}
		for i, a := range g.aggs {
			ag := &st.aggs[i]
			if a.Kind == plan.CountStar {
				ag.count++
				continue
			}
			v := evalExpr(a.Arg, row)
			ag.sum += v
			ag.count++
			if v < ag.min {
				ag.min = v
			}
			if v > ag.max {
				ag.max = v
			}
		}
	}
	// Emit in first-seen order: keys then agg values.
	g.out = nil
	for _, kk := range order {
		st := groups[kk]
		row := append([]int64(nil), st.keyVals...)
		for i, a := range g.aggs {
			ag := st.aggs[i]
			switch a.Kind {
			case plan.Sum:
				row = append(row, ag.sum)
			case plan.Min:
				row = append(row, ag.min)
			case plan.Max:
				row = append(row, ag.max)
			case plan.Avg:
				if ag.count == 0 {
					row = append(row, 0)
				} else {
					row = append(row, ag.sum*100/ag.count)
				}
			default:
				row = append(row, ag.count)
			}
		}
		g.out = append(g.out, row)
	}
	if len(g.keys) == 0 && len(g.out) == 0 {
		// Scalar aggregate over empty input still yields one row.
		row := make([]int64, len(g.aggs))
		g.out = append(g.out, row)
	}
	g.pos = 0
	return nil
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (g *groupIter) Fetch() ([]int64, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	g.pos++
	return g.out[g.pos-1], true, nil
}

func (g *groupIter) Close()   { g.out = nil }
func (g *groupIter) Release() { g.in.Release() }

// --- sort / limit ------------------------------------------------------------------

type sortIter struct {
	in     Iterator
	keys   []plan.SortItem
	fields []plan.Field

	out [][]int64
	pos int
}

func (s *sortIter) Allocate() { s.in.Allocate() }

func (s *sortIter) Start() error {
	rows, err := Drain(s.in)
	if err != nil {
		return err
	}
	// Dictionary columns sort lexicographically.
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range s.keys {
			var less, eq bool
			if k.Col < len(s.fields) && s.fields[k.Col].Type.Kind == coltypes.KindString && s.fields[k.Col].Dict != nil {
				d := s.fields[k.Col].Dict
				av, bv := dictVal(d, rows[a][k.Col]), dictVal(d, rows[b][k.Col])
				less, eq = av < bv, av == bv
			} else {
				av, bv := rows[a][k.Col], rows[b][k.Col]
				less, eq = av < bv, av == bv
			}
			if eq {
				continue
			}
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
	s.out = rows
	s.pos = 0
	return nil
}

func (s *sortIter) Fetch() ([]int64, bool, error) {
	if s.pos >= len(s.out) {
		return nil, false, nil
	}
	s.pos++
	return s.out[s.pos-1], true, nil
}

func (s *sortIter) Close()   { s.out = nil }
func (s *sortIter) Release() { s.in.Release() }

type limitIter struct {
	in   Iterator
	k    int
	seen int
}

func (l *limitIter) Allocate()    { l.in.Allocate() }
func (l *limitIter) Start() error { l.seen = 0; return l.in.Start() }
func (l *limitIter) Close()       { l.in.Close() }
func (l *limitIter) Release()     { l.in.Release() }

func (l *limitIter) Fetch() ([]int64, bool, error) {
	if l.seen >= l.k {
		return nil, false, nil
	}
	row, ok, err := l.in.Fetch()
	if !ok || err != nil {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// --- set operations -----------------------------------------------------------------

type setopIter struct {
	left, right Iterator
	kind        plan.SetOpKind

	out [][]int64
	pos int
}

func (s *setopIter) Allocate() {
	s.left.Allocate()
	s.right.Allocate()
}

func (s *setopIter) Start() error {
	lrows, err := Drain(s.left)
	if err != nil {
		return err
	}
	rrows, err := Drain(s.right)
	if err != nil {
		return err
	}
	if s.kind == plan.UnionAll {
		s.out = append(lrows, rrows...)
		return nil
	}
	rset := map[string]bool{}
	width := 0
	if len(lrows) > 0 {
		width = len(lrows[0])
	} else if len(rrows) > 0 {
		width = len(rrows[0])
	}
	for _, r := range rrows {
		rset[joinKey(r, allCols(width))] = true
	}
	emitted := map[string]bool{}
	for _, r := range lrows {
		k := joinKey(r, allCols(width))
		if emitted[k] {
			continue
		}
		inB := rset[k]
		keep := false
		switch s.kind {
		case plan.Union:
			keep = true
		case plan.Intersect:
			keep = inB
		case plan.Minus:
			keep = !inB
		}
		if keep {
			emitted[k] = true
			s.out = append(s.out, r)
		}
	}
	if s.kind == plan.Union {
		for _, r := range rrows {
			k := joinKey(r, allCols(width))
			if !emitted[k] {
				emitted[k] = true
				s.out = append(s.out, r)
			}
		}
	}
	return nil
}

func (s *setopIter) Fetch() ([]int64, bool, error) {
	if s.pos >= len(s.out) {
		return nil, false, nil
	}
	s.pos++
	return s.out[s.pos-1], true, nil
}

func (s *setopIter) Close() { s.out = nil }

func (s *setopIter) Release() {
	s.left.Release()
	s.right.Release()
}

// --- window ------------------------------------------------------------------------

type windowIter struct {
	in   Iterator
	spec *plan.Window

	out [][]int64
	pos int
}

func (w *windowIter) Allocate() { w.in.Allocate() }

func (w *windowIter) Start() error {
	rows, err := Drain(w.in)
	if err != nil {
		return err
	}
	// Sort by (partition, order).
	keyCols := append([]int(nil), w.spec.PartitionBy...)
	type ord struct {
		col  int
		desc bool
	}
	var ords []ord
	for _, o := range w.spec.OrderBy {
		ords = append(ords, ord{o.Col, o.Desc})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, c := range keyCols {
			if rows[a][c] != rows[b][c] {
				return rows[a][c] < rows[b][c]
			}
		}
		for _, o := range ords {
			av, bv := rows[a][o.col], rows[b][o.col]
			if av != bv {
				if o.desc {
					return av > bv
				}
				return av < bv
			}
		}
		return false
	})
	samePart := func(a, b []int64) bool {
		for _, c := range keyCols {
			if a[c] != b[c] {
				return false
			}
		}
		return true
	}
	sameOrder := func(a, b []int64) bool {
		for _, o := range ords {
			if a[o.col] != b[o.col] {
				return false
			}
		}
		return true
	}
	start := 0
	n := len(rows)
	for start < n {
		end := start + 1
		for end < n && samePart(rows[start], rows[end]) {
			end++
		}
		var run int64
		var rank, dense int64 = 1, 1
		var total int64
		if w.spec.Func == plan.WinTotalSum {
			for i := start; i < end; i++ {
				total += rows[i][w.spec.ValueCol]
			}
		}
		for i := start; i < end; i++ {
			var v int64
			switch w.spec.Func {
			case plan.RowNumber:
				v = int64(i - start + 1)
			case plan.Rank:
				if i > start && !sameOrder(rows[i-1], rows[i]) {
					rank = int64(i - start + 1)
				}
				v = rank
			case plan.DenseRank:
				if i > start && !sameOrder(rows[i-1], rows[i]) {
					dense++
				}
				v = dense
			case plan.CumSum:
				run += rows[i][w.spec.ValueCol]
				v = run
			case plan.WinTotalSum:
				v = total
			}
			rows[i] = append(rows[i], v)
		}
		start = end
	}
	w.out = rows
	return nil
}

func (w *windowIter) Fetch() ([]int64, bool, error) {
	if w.pos >= len(w.out) {
		return nil, false, nil
	}
	w.pos++
	return w.out[w.pos-1], true, nil
}

func (w *windowIter) Close()   { w.out = nil }
func (w *windowIter) Release() { w.in.Release() }
