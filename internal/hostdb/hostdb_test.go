package hostdb

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rapid/internal/coltypes"
	"rapid/internal/qef"
	"rapid/internal/storage"
)

func newTestDB(t testing.TB, rows int) *Database {
	t.Helper()
	db := New()
	schema := storage.MustSchema(
		storage.ColumnDef{Name: "id", Type: coltypes.Int()},
		storage.ColumnDef{Name: "grp", Type: coltypes.Int()},
		storage.ColumnDef{Name: "amount", Type: coltypes.Decimal(2)},
		storage.ColumnDef{Name: "tag", Type: coltypes.String()},
	)
	if _, err := db.CreateTable("events", schema); err != nil {
		t.Fatal(err)
	}
	var batch [][]storage.Value
	tags := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Value{
			storage.IntValue(int64(i)),
			storage.IntValue(int64(i % 10)),
			storage.DecString(fmt.Sprintf("%d.%02d", i%100, i%100)),
			storage.StrValue(tags[i%3]),
		})
	}
	if _, err := db.Insert("events", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

func loadAll(t testing.TB, db *Database) {
	t.Helper()
	if _, err := db.Load("events", LoadOptions{ChunkRows: 512}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndSCN(t *testing.T) {
	db := newTestDB(t, 100)
	tbl, _ := db.Table("events")
	if tbl.Rows() != 100 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	if db.CurrentSCN() != 1 {
		t.Fatalf("SCN = %d", db.CurrentSCN())
	}
	// Before LOAD, no journal accumulates.
	if tbl.PendingJournal() != 0 {
		t.Fatal("journal before load")
	}
	if _, err := db.CreateTable("events", tbl.Schema()); err == nil {
		t.Fatal("duplicate table should fail")
	}
}

func TestLoadBuildsReplica(t *testing.T) {
	db := newTestDB(t, 1000)
	loadAll(t, db)
	tbl, _ := db.Table("events")
	rt := tbl.Rapid()
	if rt == nil || rt.Rows() != 1000 {
		t.Fatal("replica missing or wrong size")
	}
	// Replica decodes to the same values.
	v := rt.DecodeValue(3, rt.Partition(0).Chunk(0).Col(3).Data().Get(4))
	if v.Str != "green" { // row 4: 4%3 = 1 -> green
		t.Fatalf("replica tag = %s", v.Str)
	}
}

func TestJournalAndCheckpoint(t *testing.T) {
	db := newTestDB(t, 100)
	loadAll(t, db)
	tbl, _ := db.Table("events")

	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(1000), storage.IntValue(1), storage.DecString("9.99"), storage.StrValue("red"),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("events", 5, 1, storage.IntValue(77)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("events", 6); err != nil {
		t.Fatal(err)
	}
	if tbl.PendingJournal() != 3 {
		t.Fatalf("journal = %d", tbl.PendingJournal())
	}
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}
	if tbl.PendingJournal() != 0 {
		t.Fatal("journal not drained")
	}
	// Replica sees the changes.
	snap := tbl.Rapid().Snapshot(storage.LatestSCN)
	if snap.TotalRows() != 100 { // +1 insert -1 delete
		t.Fatalf("replica rows = %d", snap.TotalRows())
	}
}

func TestQueryOffloadAndResults(t *testing.T) {
	db := newTestDB(t, 5000)
	loadAll(t, db)
	res, err := db.Query(`
		SELECT grp, COUNT(*) AS n, SUM(amount) AS total
		FROM events WHERE tag = 'red'
		GROUP BY grp ORDER BY grp`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offloaded || res.FellBack {
		t.Fatalf("offload state: %+v", res)
	}
	if res.Rel.Rows() != 10 {
		t.Fatalf("groups = %d", res.Rel.Rows())
	}
	// Cross-check against host execution.
	host, err := db.Query(`
		SELECT grp, COUNT(*) AS n, SUM(amount) AS total
		FROM events WHERE tag = 'red'
		GROUP BY grp ORDER BY grp`,
		QueryOptions{Mode: ForceHost})
	if err != nil {
		t.Fatal(err)
	}
	if host.Offloaded {
		t.Fatal("ForceHost must not offload")
	}
	if host.Rel.Rows() != res.Rel.Rows() {
		t.Fatalf("host %d vs rapid %d rows", host.Rel.Rows(), res.Rel.Rows())
	}
	for i := 0; i < res.Rel.Rows(); i++ {
		for c := 0; c < res.Rel.NumCols(); c++ {
			if res.Rel.Cols[c].Data.Get(i) != host.Rel.Cols[c].Data.Get(i) {
				t.Fatalf("row %d col %d: rapid %d vs host %d", i, c,
					res.Rel.Cols[c].Data.Get(i), host.Rel.Cols[c].Data.Get(i))
			}
		}
	}
}

func TestCostBasedOffloadDecision(t *testing.T) {
	db := newTestDB(t, 20000)
	loadAll(t, db)
	res, err := db.Query(`SELECT SUM(amount) FROM events`, QueryOptions{Mode: CostBased, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	// A full-scan aggregate over 20k rows should win on RAPID.
	if !res.Offloaded {
		t.Fatalf("expected offload: est rapid %.3gs vs host %.3gs", res.EstRapidSec, res.EstHostSec)
	}
	if res.EstRapidSec >= res.EstHostSec {
		t.Fatal("estimates inconsistent with decision")
	}
}

func TestAdmissibilityFallback(t *testing.T) {
	db := newTestDB(t, 1000)
	loadAll(t, db)
	// Pending journal makes the query inadmissible.
	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(2000), storage.IntValue(1), storage.DecString("1.00"), storage.StrValue("red"),
	}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack || res.Offloaded {
		t.Fatalf("expected fallback: %+v", res)
	}
	// Host result includes the new row (host is source of truth).
	if res.Rel.Cols[0].Data.Get(0) != 1001 {
		t.Fatalf("count = %d", res.Rel.Cols[0].Data.Get(0))
	}
	// FailOnInadmissible surfaces the error instead.
	if _, err := db.Query(`SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}); err == nil {
		t.Fatal("expected admissibility error")
	}
	// After checkpointing, offload works and sees the row.
	if err := db.Checkpoint("events"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.Query(`SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Offloaded || res2.Rel.Cols[0].Data.Get(0) != 1001 {
		t.Fatalf("post-checkpoint: offloaded=%v count=%d", res2.Offloaded, res2.Rel.Cols[0].Data.Get(0))
	}
}

func TestRapidFailureFallback(t *testing.T) {
	db := newTestDB(t, 500)
	loadAll(t, db)
	res, err := db.Query(`SELECT COUNT(*) FROM events`,
		QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeX86, InjectRapidFailure: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack || res.Rel.Cols[0].Data.Get(0) != 500 {
		t.Fatalf("failure fallback broken: %+v", res)
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	db := newTestDB(t, 100)
	loadAll(t, db)
	db.StartBackgroundCheckpointer(5 * time.Millisecond)
	defer db.StopBackgroundCheckpointer()
	if _, err := db.Insert("events", [][]storage.Value{{
		storage.IntValue(900), storage.IntValue(0), storage.DecString("0.01"), storage.StrValue("blue"),
	}}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("events")
	deadline := time.Now().Add(2 * time.Second)
	for tbl.PendingJournal() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if tbl.PendingJournal() != 0 {
		t.Fatal("background checkpointer did not drain the journal")
	}
	// Idempotent start/stop.
	db.StartBackgroundCheckpointer(time.Hour)
	db.StopBackgroundCheckpointer()
	db.StopBackgroundCheckpointer()
}

func TestVolcanoEngineDirect(t *testing.T) {
	db := newTestDB(t, 2000)
	loadAll(t, db)
	// Exercise join, sort, limit, window and set ops through SQL on the
	// host engine and validate shapes.
	res, err := db.Query(`
		SELECT tag, COUNT(*) AS n FROM events
		WHERE amount > 0.50 GROUP BY tag ORDER BY n DESC LIMIT 2`,
		QueryOptions{Mode: ForceHost})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Rows() != 2 {
		t.Fatalf("rows = %d", res.Rel.Rows())
	}
	if res.Rel.Cols[1].Data.Get(0) < res.Rel.Cols[1].Data.Get(1) {
		t.Fatal("not sorted desc")
	}
	// String rendering through the host path keeps dictionaries.
	if got := res.Rel.Render(0, 0); got != "red" && got != "green" && got != "blue" {
		t.Fatalf("tag render = %q", got)
	}
}

func TestHostAndRapidAgreeOnEverything(t *testing.T) {
	db := newTestDB(t, 6000)
	loadAll(t, db)
	queries := []string{
		`SELECT COUNT(*) FROM events`,
		`SELECT SUM(amount), MIN(amount), MAX(amount) FROM events WHERE grp < 5`,
		`SELECT grp, AVG(amount) AS a FROM events GROUP BY grp ORDER BY grp`,
		`SELECT id, amount FROM events WHERE tag = 'blue' AND amount BETWEEN 0.10 AND 0.90 ORDER BY id LIMIT 20`,
		`SELECT tag, SUM(CASE WHEN grp = 0 THEN 1 ELSE 0 END) AS z FROM events GROUP BY tag ORDER BY tag`,
		`SELECT grp FROM events WHERE amount > 0.98 UNION SELECT grp FROM events WHERE amount < 0.01`,
	}
	for _, q := range queries {
		host, err := db.Query(q, QueryOptions{Mode: ForceHost})
		if err != nil {
			t.Fatalf("%s: host: %v", q, err)
		}
		rapid, err := db.Query(q, QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU})
		if err != nil {
			t.Fatalf("%s: rapid: %v", q, err)
		}
		if !relEqualUnordered(host.Rel, rapid.Rel, strings.Contains(q, "ORDER BY")) {
			t.Fatalf("%s: host and RAPID disagree\nhost rows=%d rapid rows=%d", q, host.Rel.Rows(), rapid.Rel.Rows())
		}
	}
}

// relEqualUnordered compares relations, respecting order when ordered=true.
func relEqualUnordered(a, b interface {
	Rows() int
	NumCols() int
	Render(int, int) string
}, ordered bool) bool {
	if a.Rows() != b.Rows() || a.NumCols() != b.NumCols() {
		return false
	}
	rowStr := func(r interface{ Render(int, int) string }, i, nc int) string {
		var sb strings.Builder
		for c := 0; c < nc; c++ {
			sb.WriteString(r.Render(i, c))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	if ordered {
		for i := 0; i < a.Rows(); i++ {
			if rowStr(a, i, a.NumCols()) != rowStr(b, i, a.NumCols()) {
				return false
			}
		}
		return true
	}
	counts := map[string]int{}
	for i := 0; i < a.Rows(); i++ {
		counts[rowStr(a, i, a.NumCols())]++
	}
	for i := 0; i < b.Rows(); i++ {
		counts[rowStr(b, i, a.NumCols())]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestWindowAgreesAcrossEngines(t *testing.T) {
	db := newTestDB(t, 3000)
	loadAll(t, db)
	// rank() is deterministic under ties (row_number is not).
	q := `SELECT id, grp, rank() OVER (PARTITION BY grp ORDER BY amount DESC) AS rn
	      FROM events WHERE grp < 4`
	host, err := db.Query(q, QueryOptions{Mode: ForceHost})
	if err != nil {
		t.Fatal(err)
	}
	rapid, err := db.Query(q, QueryOptions{Mode: ForceOffload, RapidMode: qef.ModeDPU})
	if err != nil {
		t.Fatal(err)
	}
	if !relEqualUnordered(host.Rel, rapid.Rel, false) {
		t.Fatalf("window results disagree: host %d vs rapid %d rows", host.Rel.Rows(), rapid.Rel.Rows())
	}
}
