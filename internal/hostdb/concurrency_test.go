package hostdb_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/ops"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/tpch"
)

// The concurrency battery: many goroutines firing mixed TPC-H queries at
// ONE shared hostdb.Database, whose offloads all multiplex over the same
// shared-SoC scheduler. Results must be identical to serial execution,
// the run must be race-clean (CI runs this package under -race), overload
// must shed with ErrOverloaded, and cancellation must be prompt and must
// release its admission slot.

// stressSeedFlag replays a specific workload shape:
//
//	go test -run TestConcurrentQueriesMatchSerial -hostdb.stress-seed=42
var stressSeedFlag = flag.Int64("hostdb.stress-seed", 2018, "seed for the concurrency stress workload (deterministic replay)")

// concurrencyDB builds one shared TPC-H database for the battery.
func concurrencyDB(t *testing.T, cfg sched.Config) *hostdb.Database {
	t.Helper()
	db := hostdb.NewWithConfig(nil, cfg)
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: 0.002, Seed: *stressSeedFlag}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

// relFingerprint renders a relation as a sorted multiset of row strings, so
// result comparison is independent of any row-order differences.
func relFingerprint(rel *ops.Relation) string {
	if rel == nil {
		return "<nil>"
	}
	rows := make([]string, rel.Rows())
	for i := range rows {
		var sb strings.Builder
		for c := 0; c < rel.NumCols(); c++ {
			if c > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(rel.Render(i, c))
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return fmt.Sprintf("%d cols\n%s", rel.NumCols(), strings.Join(rows, "\n"))
}

// stressCase is one (query, options) workload item.
type stressCase struct {
	name string
	sql  string
	opts hostdb.QueryOptions
}

func stressWorkload() []stressCase {
	var cases []stressCase
	modes := []struct {
		tag  string
		opts hostdb.QueryOptions
	}{
		{"dpu", hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}},
		{"x86", hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}},
		{"auto", hostdb.QueryOptions{Mode: hostdb.CostBased, RapidMode: qef.ModeX86}},
	}
	for i, q := range tpch.Queries() {
		m := modes[i%len(modes)]
		cases = append(cases, stressCase{name: q.Name + "/" + m.tag, sql: q.SQL, opts: m.opts})
	}
	return cases
}

// TestConcurrentQueriesMatchSerial is the acceptance-criterion stress run:
// >= 64 concurrent mixed queries on one shared database, every result
// identical to the same query run serially beforehand.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 6, MaxQueued: 128})
	cases := stressWorkload()

	// Serial baselines.
	want := make([]string, len(cases))
	for i, c := range cases {
		res, err := db.Query(c.sql, c.opts)
		if err != nil {
			t.Fatalf("serial %s: %v", c.name, err)
		}
		want[i] = relFingerprint(res.Rel)
	}

	const clients = 64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cases[g%len(cases)]
			res, err := db.QueryCtx(context.Background(), c.sql, c.opts)
			if err != nil {
				errs[g] = fmt.Errorf("%s: %w", c.name, err)
				return
			}
			if got := relFingerprint(res.Rel); got != want[g%len(cases)] {
				errs[g] = fmt.Errorf("%s: concurrent result differs from serial\nconcurrent:\n%s\nserial:\n%s", c.name, got, want[g%len(cases)])
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestConcurrentSimAccountingIsolated: concurrent DPU queries must report
// the same simulated seconds as when run alone — each query's accounting
// context is private, so sharing physical workers must not leak simulated
// time across queries.
func TestConcurrentSimAccountingIsolated(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 8})
	q := tpch.Queries()[0]
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}

	base, err := db.Query(q.SQL, opts)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	const clients = 8
	sims := make([]float64, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := db.Query(q.SQL, opts)
			if err != nil {
				t.Errorf("client %d: %v", g, err)
				return
			}
			sims[g] = res.RapidSimSeconds
		}(g)
	}
	wg.Wait()
	for g, s := range sims {
		if s != base.RapidSimSeconds {
			t.Errorf("client %d simulated %.9gs, serial run %.9gs — accounting leaked across queries", g, s, base.RapidSimSeconds)
		}
	}
}

// TestOverloadShedsQueries: with every slot held and the queue full, a
// query must fail fast with sched.ErrOverloaded instead of queuing.
func TestOverloadShedsQueries(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 1, MaxQueued: 1})
	s := db.Scheduler()

	hold, err := s.Admit(context.Background(), sched.Request{})
	if err != nil {
		t.Fatalf("hold Admit: %v", err)
	}
	defer hold.Release()
	queued, err2 := make(chan error, 1), error(nil)
	go func() {
		a, err := s.Admit(context.Background(), sched.Request{})
		if a != nil {
			a.Release()
		}
		queued <- err
	}()
	// Wait until the filler occupies the single queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Values()["sched_queue_depth"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never queued")
		}
		time.Sleep(time.Millisecond)
	}

	q := tpch.Queries()[0]
	_, err2 = db.QueryCtx(context.Background(), q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
	if !errors.Is(err2, sched.ErrOverloaded) {
		t.Fatalf("query under overload = %v, want sched.ErrOverloaded", err2)
	}
	hold.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued admission after release: %v", err)
	}
}

// TestDeadlineCancelsPromptly: a query with an already-expired deadline
// must return context.DeadlineExceeded (not fall back to the host engine),
// must not leak goroutines, and must have released its admission slot.
func TestDeadlineCancelsPromptly(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 2})
	q := tpch.Queries()[0]
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}

	// Warm up: run once so pools, tables and scheduler workers exist before
	// the goroutine baseline is taken.
	if _, err := db.Query(q.SQL, opts); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		start := time.Now()
		_, err := db.QueryCtx(ctx, q.SQL, opts)
		took := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iter %d: err = %v, want context.DeadlineExceeded", i, err)
		}
		// Cancellation is checked per tile / per work unit: even generously,
		// the whole query must stop well under a second.
		if took > 2*time.Second {
			t.Fatalf("iter %d: cancellation took %v", i, took)
		}
	}

	// Admission slots must all be back.
	if got := db.Metrics().Values()["sched_active_queries"]; got != 0 {
		t.Errorf("sched_active_queries after cancellations = %d, want 0", got)
	}
	// And a normal query still runs (no slot leak, no wedged workers).
	if _, err := db.Query(q.SQL, opts); err != nil {
		t.Fatalf("query after cancellations: %v", err)
	}

	// Goroutine budget: allow slack for runtime/test goroutines, but a leak
	// of one goroutine per canceled query (20) must be caught.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 20 cancellations", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelWhileQueuedReleasesWaiter: a query canceled while waiting for
// admission returns ctx.Err() and leaves the queue, letting later queries
// proceed.
func TestCancelWhileQueuedReleasesWaiter(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 1, MaxQueued: 8})
	s := db.Scheduler()
	hold, err := s.Admit(context.Background(), sched.Request{})
	if err != nil {
		t.Fatalf("hold Admit: %v", err)
	}

	q := tpch.Queries()[0]
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryCtx(ctx, q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Values()["sched_queue_depth"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query after cancel = %v, want context.Canceled", err)
	}
	hold.Release()
	if _, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}); err != nil {
		t.Fatalf("query after canceled waiter: %v", err)
	}
}

// TestHostPathObservesContext: cancellation also applies to host-engine
// execution (the row interpreter checks ctx between fetch batches).
func TestHostPathObservesContext(t *testing.T) {
	db := concurrencyDB(t, sched.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := tpch.Queries()[0]
	_, err := db.QueryCtx(ctx, q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("host query with canceled ctx = %v, want context.Canceled", err)
	}
}

// TestQueueWaitSurfaced: a query that had to wait reports a nonzero
// QueueWait, and immediate admissions report zero.
func TestQueueWaitSurfaced(t *testing.T) {
	db := concurrencyDB(t, sched.Config{MaxConcurrent: 1})
	s := db.Scheduler()
	q := tpch.Queries()[0]
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}

	res, err := db.Query(q.SQL, opts)
	if err != nil {
		t.Fatalf("unqueued query: %v", err)
	}
	if res.QueueWait != 0 {
		t.Errorf("unqueued query reported QueueWait %v", res.QueueWait)
	}

	hold, err := s.Admit(context.Background(), sched.Request{})
	if err != nil {
		t.Fatalf("hold Admit: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := db.Query(q.SQL, opts)
		if err != nil {
			t.Errorf("queued query: %v", err)
			return
		}
		if res.QueueWait <= 0 {
			t.Errorf("queued query reported QueueWait %v, want > 0", res.QueueWait)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Values()["sched_queue_depth"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // accrue measurable wait
	hold.Release()
	<-done
	if db.Metrics().Histogram("sched_queue_wait_seconds").Count() < 2 {
		t.Error("sched_queue_wait_seconds histogram missing observations")
	}
}
