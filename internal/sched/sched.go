// Package sched is the shared-SoC concurrent query scheduler: one
// process-wide pool of virtual dpCores that multiplexes every concurrent
// query's work units over a single machine's worth of execution resources.
//
// The paper's QEF runs many queries against one fixed 32-dpCore SoC; this
// package restores that model for the reproduction, which previously built a
// private SoC per query and so had no resource sharing or contention at all.
// It provides:
//
//   - Admission control: a configurable number of concurrently-executing
//     queries, a bounded FIFO run queue with aggregate DMEM reservation
//     accounting, and fast-fail backpressure — Admit returns ErrOverloaded
//     the moment the queue is full instead of queuing unboundedly.
//   - Fair dispatch: each query's work units are split into per-virtual-core
//     strands, and scheduler workers drain strands weighted-round-robin at
//     WORK-UNIT granularity — after every unit the worker may switch to
//     another query, so a large scan cannot starve point queries.
//   - Determinism: unit i of a batch still executes on virtual core
//     i mod Workers() of its own query's context, units of one virtual core
//     run in ascending order, and the deterministic lowest-failing-unit
//     error semantics of qef.RunParallel are preserved. Simulated-time and
//     profile accounting are therefore identical to serial execution.
//   - Pool ownership: each scheduler worker owns one mem.TilePool for its
//     whole lifetime, so tile-buffer pooling survives across queries (and is
//     bounded by PoolRetainBytes so one huge query cannot pin its arenas).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rapid/internal/dpu"
	"rapid/internal/mem"
	"rapid/internal/obs"
	"rapid/internal/qef"
)

// ErrOverloaded is returned by Admit when the bounded run queue is full:
// the caller should shed the query (or retry with backoff) rather than
// expect it to be queued.
var ErrOverloaded = errors.New("sched: overloaded, admission queue full")

// ErrClosed is returned for operations on a closed scheduler.
var ErrClosed = errors.New("sched: scheduler closed")

// Config tunes a scheduler instance (one per database).
type Config struct {
	// Workers is the number of shared virtual dpCores (worker goroutines).
	// Default: the paper SoC's 32 cores.
	Workers int
	// MaxConcurrent is the number of queries allowed to execute at once.
	// Default 8.
	MaxConcurrent int
	// MaxQueued bounds the admission wait queue; an Admit beyond it fails
	// fast with ErrOverloaded. Default 64.
	MaxQueued int
	// DMEMBudgetBytes is the aggregate scratchpad reservation the admitted
	// set may hold. Each query reserves Cores × 32 KiB (its virtual cores'
	// DMEMs) while running; a query whose reservation does not fit waits in
	// the queue even when a concurrency slot is free. The default is
	// MaxConcurrent full SoCs, i.e. non-binding; configure it lower to
	// serialize memory-hungry queries.
	DMEMBudgetBytes int64
	// PoolRetainBytes caps the tile-buffer arena bytes a scheduler worker
	// keeps alive between work units. Default 16 MiB; negative disables
	// trimming.
	PoolRetainBytes int
	// Metrics receives the scheduler counters/gauges (sched_*). Nil means
	// no metrics.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = dpu.DefaultConfig().NumCores
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.DMEMBudgetBytes <= 0 {
		c.DMEMBudgetBytes = int64(c.MaxConcurrent) * int64(c.Workers) * int64(dpu.DefaultConfig().DMEMBytes)
	}
	if c.PoolRetainBytes == 0 {
		c.PoolRetainBytes = 16 << 20
	}
	return c
}

// Request describes one query's resource demand at admission time.
type Request struct {
	// QueryID is the fleet-wide query identifier (obs.ActiveSet allocated),
	// carried through admission so scheduler-side records and the query
	// journal reconcile by ID. Zero means unidentified.
	QueryID uint64
	// Cores is the number of virtual cores the query's context will use.
	// Zero means the full shared SoC.
	Cores int
	// DMEMBytes is the scratchpad reservation; zero derives Cores × 32 KiB.
	// Demands above the scheduler's total budget are clamped to it, so an
	// oversized query runs alone instead of never.
	DMEMBytes int64
	// Weight is the round-robin weight: a weight-w query is served up to w
	// consecutive work units per scheduling turn. Zero means 1.
	Weight int
}

// Scheduler multiplexes concurrent queries over one shared pool of virtual
// dpCores.
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	started  bool
	wg       sync.WaitGroup
	stopPool chan struct{}

	// Admission state.
	running  int
	dmemUsed int64
	waiting  []*waiter

	// Dispatch state: queries with runnable strands, served round-robin.
	active   []*query
	cursor   int
	runnable int // total runnable strands (cond-wait predicate)

	// Metrics (never nil; obs handles a nil registry receiver but keeping
	// concrete handles avoids name lookups on the hot path).
	admitted    *obs.Counter
	rejected    *obs.Counter
	canceled    *obs.Counter
	preempted   *obs.Counter
	unitsTotal  *obs.Counter
	queueDepth  *obs.Gauge
	activeGauge *obs.Gauge
	waitHist    *obs.Histogram
}

// waiter is one queued admission request.
type waiter struct {
	req      Request
	ready    chan struct{}
	admitted bool
	err      error
}

// query is the dispatch-side state of one admitted query.
type query struct {
	weight   int
	served   int // units served in the current round-robin turn
	runnable []*strand
	inActive bool

	// Per-virtual-core task contexts, cached for the admission's lifetime so
	// operator accounting (DMEM, cycle counters) reuses one state per core
	// exactly like the context-owned run loops. Slot v is only touched by
	// the worker currently holding strand v (strands are exclusive).
	qc  *qef.Context
	tcs []*qef.TaskCtx
}

// batch is one RunUnits call: a set of work units split into strands.
type batch struct {
	q      *query
	qc     *qef.Context
	units  []qef.WorkUnit
	stride int
	errs   []error
	// firstFailed is the lowest failing unit index seen so far (len(units)
	// when none): strands skip units above it, matching qef.RunParallel.
	firstFailed atomic.Int64
	pending     int // strands not yet finished (guarded by Scheduler.mu)
	done        chan struct{}
}

// strand is the ordered unit sequence of one virtual core within a batch:
// indices vcore, vcore+stride, vcore+2·stride, … Exactly one worker holds a
// strand at a time, which serializes each virtual core's DMEM and cycle
// accounting just like the per-core goroutines it replaces.
type strand struct {
	b     *batch
	vcore int
	next  int
}

// New builds a scheduler. Worker goroutines start lazily on first admission
// and are stopped by Close.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, stopPool: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	m := cfg.Metrics
	m.Describe("sched_admitted_total", "Queries admitted to the shared-SoC scheduler.")
	m.Describe("sched_rejected_total", "Admissions fast-failed with ErrOverloaded (queue full).")
	m.Describe("sched_canceled_while_queued_total", "Admissions abandoned by context cancellation while queued.")
	m.Describe("sched_preempted_total", "Work-unit boundaries where a worker switched to a different query.")
	m.Describe("sched_units_total", "Work units dispatched by the shared scheduler.")
	m.Describe("sched_queue_depth", "Admission requests currently waiting.")
	m.Describe("sched_active_queries", "Queries currently holding an execution slot.")
	m.Describe("sched_queue_wait_seconds", "Admission queue wait per query.")
	s.admitted = m.Counter("sched_admitted_total")
	s.rejected = m.Counter("sched_rejected_total")
	s.canceled = m.Counter("sched_canceled_while_queued_total")
	s.preempted = m.Counter("sched_preempted_total")
	s.unitsTotal = m.Counter("sched_units_total")
	s.queueDepth = m.Gauge("sched_queue_depth")
	s.activeGauge = m.Gauge("sched_active_queries")
	s.waitHist = m.Histogram("sched_queue_wait_seconds")
	return s
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

func (s *Scheduler) normalize(req Request) Request {
	if req.Cores <= 0 || req.Cores > s.cfg.Workers {
		req.Cores = s.cfg.Workers
	}
	if req.DMEMBytes <= 0 {
		req.DMEMBytes = int64(req.Cores) * int64(dpu.DefaultConfig().DMEMBytes)
	}
	if req.DMEMBytes > s.cfg.DMEMBudgetBytes {
		req.DMEMBytes = s.cfg.DMEMBudgetBytes
	}
	if req.Weight <= 0 {
		req.Weight = 1
	}
	return req
}

func (s *Scheduler) canAdmitLocked(req Request) bool {
	return s.running < s.cfg.MaxConcurrent && s.dmemUsed+req.DMEMBytes <= s.cfg.DMEMBudgetBytes
}

func (s *Scheduler) admitLocked(req Request) {
	s.running++
	s.dmemUsed += req.DMEMBytes
	s.activeGauge.Set(int64(s.running))
	if !s.started {
		s.started = true
		for w := 0; w < s.cfg.Workers; w++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
}

// Admit blocks until the query may execute, observing ctx for cancellation
// while queued. It fails fast with ErrOverloaded when the wait queue is
// full. The returned Admission is the query's execution handle: install it
// as the qef.Context's Exec and Release it when the query finishes.
func (s *Scheduler) Admit(ctx context.Context, req Request) (*Admission, error) {
	req = s.normalize(req)
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Strict FIFO: even an immediately-satisfiable request queues behind
	// existing waiters so a big reservation at the head cannot starve.
	if len(s.waiting) == 0 && s.canAdmitLocked(req) {
		s.admitLocked(req)
		s.mu.Unlock()
		s.admitted.Inc()
		s.waitHist.Observe(0)
		return s.newAdmission(req, 0), nil
	}
	if len(s.waiting) >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, ErrOverloaded
	}
	w := &waiter{req: req, ready: make(chan struct{})}
	s.waiting = append(s.waiting, w)
	s.queueDepth.Set(int64(len(s.waiting)))
	s.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		wait := time.Since(start)
		s.admitted.Inc()
		s.waitHist.Observe(wait.Seconds())
		return s.newAdmission(req, wait), nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.admitted {
			// Raced with dispatch: we hold a slot; give it back.
			s.releaseLocked(req)
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		for i, q := range s.waiting {
			if q == w {
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				break
			}
		}
		s.queueDepth.Set(int64(len(s.waiting)))
		s.mu.Unlock()
		s.canceled.Inc()
		return nil, ctx.Err()
	}
}

func (s *Scheduler) newAdmission(req Request, wait time.Duration) *Admission {
	return &Admission{s: s, req: req, wait: wait, q: &query{weight: req.Weight}}
}

// releaseLocked returns a query's reservation and dispatches eligible
// waiters in FIFO order.
func (s *Scheduler) releaseLocked(req Request) {
	s.running--
	s.dmemUsed -= req.DMEMBytes
	s.activeGauge.Set(int64(s.running))
	for len(s.waiting) > 0 {
		w := s.waiting[0]
		if !s.canAdmitLocked(w.req) {
			break
		}
		s.admitLocked(w.req)
		w.admitted = true
		s.waiting = s.waiting[1:]
		close(w.ready)
	}
	s.queueDepth.Set(int64(len(s.waiting)))
}

// Close stops the scheduler: queued admissions fail with ErrClosed, workers
// drain any in-flight batches and exit. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, w := range s.waiting {
		w.err = ErrClosed
		close(w.ready)
	}
	s.waiting = nil
	s.queueDepth.Set(0)
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Admission is one admitted query's handle: it carries the reservation and
// implements qef.Executor, so installing it as the context's Exec routes all
// of the query's work units through the shared pool.
type Admission struct {
	s        *Scheduler
	req      Request
	wait     time.Duration
	q        *query
	released bool
}

// QueueWait returns how long the query waited in the admission queue.
func (a *Admission) QueueWait() time.Duration { return a.wait }

// QueryID returns the fleet-wide query identifier the request carried
// (zero when the caller did not assign one).
func (a *Admission) QueryID() uint64 { return a.req.QueryID }

// Release returns the query's reservation, unblocking queued admissions.
// Call it exactly once, after the last RunUnits call has returned.
func (a *Admission) Release() {
	s := a.s
	s.mu.Lock()
	if a.released {
		s.mu.Unlock()
		return
	}
	a.released = true
	s.releaseLocked(a.req)
	s.mu.Unlock()
}

// RunUnits implements qef.Executor: it splits the batch into per-virtual-
// core strands, enqueues them for the worker pool and blocks until every
// unit has run (or been skipped by the first-error watermark).
func (a *Admission) RunUnits(qc *qef.Context, units []qef.WorkUnit) error {
	if len(units) == 0 {
		return nil
	}
	s := a.s
	stride := qc.Workers()
	if stride <= 0 {
		stride = 1
	}
	nstr := stride
	if len(units) < nstr {
		nstr = len(units)
	}
	b := &batch{
		q: a.q, qc: qc, units: units, stride: stride,
		errs: make([]error, len(units)), pending: nstr,
		done: make(chan struct{}),
	}
	b.firstFailed.Store(int64(len(units)))

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if a.released {
		s.mu.Unlock()
		return fmt.Errorf("sched: RunUnits after Release")
	}
	q := a.q
	if q.qc != qc {
		q.qc = qc
		q.tcs = make([]*qef.TaskCtx, stride)
	}
	for v := 0; v < nstr; v++ {
		q.runnable = append(q.runnable, &strand{b: b, vcore: v, next: v})
	}
	s.runnable += nstr
	if !q.inActive {
		q.inActive = true
		s.active = append(s.active, q)
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	<-b.done
	if f := b.firstFailed.Load(); f < int64(len(units)) {
		return b.errs[f]
	}
	return nil
}

// pickLocked selects the next strand weighted-round-robin across active
// queries. Caller holds s.mu and has checked s.runnable > 0.
func (s *Scheduler) pickLocked() *strand {
	for {
		if s.cursor >= len(s.active) {
			s.cursor = 0
		}
		q := s.active[s.cursor]
		if len(q.runnable) == 0 {
			// Drained (its strands are executing or finished): drop from the
			// ring; a later requeue re-adds it.
			q.inActive = false
			q.served = 0
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
			continue
		}
		st := q.runnable[0]
		q.runnable = q.runnable[1:]
		s.runnable--
		q.served++
		if q.served >= q.weight {
			q.served = 0
			s.cursor++
		}
		return st
	}
}

// requeueLocked puts a strand with remaining units back at the tail of its
// query's runnable list — the unit-granularity preemption point.
func (s *Scheduler) requeueLocked(st *strand) {
	q := st.b.q
	q.runnable = append(q.runnable, st)
	s.runnable++
	if !q.inActive {
		q.inActive = true
		s.active = append(s.active, q)
	}
}

// strandDoneLocked retires a strand; the last one of a batch completes it.
func (s *Scheduler) strandDoneLocked(st *strand) {
	st.b.pending--
	if st.b.pending == 0 {
		close(st.b.done)
	}
}

// nextIdx returns the strand's next unit index, or ok=false when the strand
// is exhausted (end of sequence, or skipped past the first-error watermark —
// every remaining index is above it too, so the whole strand retires).
func (st *strand) nextIdx() (int, bool) {
	if st.next >= len(st.b.units) || int64(st.next) > st.b.firstFailed.Load() {
		return 0, false
	}
	idx := st.next
	st.next += st.b.stride
	return idx, true
}

// taskCtx returns the cached per-(query, virtual core) task context,
// creating it on first use. Only the worker holding strand v touches slot v.
func (b *batch) taskCtx(v int) *qef.TaskCtx {
	if b.q.tcs[v] == nil {
		b.q.tcs[v] = b.qc.NewTaskCtx(v)
	}
	return b.q.tcs[v]
}

// worker is one shared virtual dpCore: it owns a TilePool for its lifetime
// and executes one work unit per scheduling decision.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	pool := mem.NewTilePool()
	var lastQ *query // identity only; never dereferenced after release
	for {
		s.mu.Lock()
		for s.runnable == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.runnable == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		st := s.pickLocked()
		idx, ok := st.nextIdx()
		if !ok {
			s.strandDoneLocked(st)
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()

		b := st.b
		if lastQ != nil && lastQ != b.q {
			s.preempted.Inc()
		}
		lastQ = b.q
		tc := b.taskCtx(st.vcore)
		tc.BindPool(pool)
		err := b.qc.RunUnit(tc, b.units[idx])
		s.unitsTotal.Inc()
		if s.cfg.PoolRetainBytes >= 0 {
			pool.TrimTo(s.cfg.PoolRetainBytes)
		}

		s.mu.Lock()
		if err != nil {
			b.errs[idx] = err
			for {
				cur := b.firstFailed.Load()
				if int64(idx) >= cur || b.firstFailed.CompareAndSwap(cur, int64(idx)) {
					break
				}
			}
		}
		if st.next < len(b.units) {
			s.requeueLocked(st)
		} else {
			s.strandDoneLocked(st)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}
