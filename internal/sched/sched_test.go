package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rapid/internal/dpu"
	"rapid/internal/obs"
	"rapid/internal/qef"
)

// newTestSched builds a scheduler with a registry so tests can assert on
// the sched_* metrics.
func newTestSched(t *testing.T, cfg Config) (*Scheduler, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := New(cfg)
	t.Cleanup(s.Close)
	return s, reg
}

// oneCoreCtx builds a single-virtual-core ModeX86 context, so every batch is
// one strand and scheduling interleavings are fully deterministic.
func oneCoreCtx() *qef.Context {
	cfg := dpu.DefaultConfig()
	cfg.NumCores = 1
	cfg.CoresPerMacro = 1
	return qef.NewContextWith(qef.ModeX86, cfg)
}

func TestAdmitImmediateAndRelease(t *testing.T) {
	s, reg := newTestSched(t, Config{MaxConcurrent: 2})
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if a.QueueWait() != 0 {
		t.Errorf("immediate admission reported queue wait %v", a.QueueWait())
	}
	b, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("second Admit: %v", err)
	}
	a.Release()
	b.Release()
	b.Release() // double release must be a no-op
	if got := reg.Values()["sched_admitted_total"]; got != 2 {
		t.Errorf("sched_admitted_total = %d, want 2", got)
	}
	if got := reg.Values()["sched_active_queries"]; got != 0 {
		t.Errorf("sched_active_queries after release = %d, want 0", got)
	}
}

func TestOverloadFastFail(t *testing.T) {
	s, reg := newTestSched(t, Config{MaxConcurrent: 1, MaxQueued: 2})
	hold, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// Fill the wait queue with two queued admissions.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			a, err := s.Admit(context.Background(), Request{})
			if a != nil {
				defer a.Release()
			}
			results <- err
		}()
	}
	waitQueueDepth(t, s, 2)
	// The queue is full: the next admission must shed, not wait.
	start := time.Now()
	if _, err := s.Admit(context.Background(), Request{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Admit on full queue = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("overload rejection took %v, want fast-fail", d)
	}
	if got := reg.Values()["sched_rejected_total"]; got != 1 {
		t.Errorf("sched_rejected_total = %d, want 1", got)
	}
	hold.Release()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued admission failed: %v", err)
		}
	}
}

// waitQueueDepth blocks until exactly n admissions are waiting.
func waitQueueDepth(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		depth := len(s.waiting)
		s.mu.Unlock()
		if depth == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRunnable blocks until the scheduler has exactly n runnable strands.
func waitRunnable(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		r := s.runnable
		s.mu.Unlock()
		if r == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("runnable never reached %d (at %d)", n, r)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	s, _ := newTestSched(t, Config{MaxConcurrent: 1, MaxQueued: 8})
	hold, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Queue three waiters strictly in order (each confirmed queued before
	// the next starts).
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := s.Admit(context.Background(), Request{})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release()
		}(i)
		waitQueueDepth(t, s, i)
	}
	hold.Release()
	wg.Wait()
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("admission order = %v, want strict FIFO [1 2 3]", order)
		}
	}
}

func TestDMEMBudgetSerializes(t *testing.T) {
	// Budget fits exactly one full-SoC reservation: two queries with free
	// concurrency slots must still serialize on memory.
	demand := int64(dpu.DefaultConfig().NumCores) * int64(dpu.DefaultConfig().DMEMBytes)
	s, _ := newTestSched(t, Config{MaxConcurrent: 4, DMEMBudgetBytes: demand})
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	admitted := make(chan *Admission, 1)
	go func() {
		b, err := s.Admit(context.Background(), Request{})
		if err != nil {
			t.Errorf("second Admit: %v", err)
		}
		admitted <- b
	}()
	waitQueueDepth(t, s, 1)
	select {
	case <-admitted:
		t.Fatal("second query admitted while budget exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	b := <-admitted
	if b != nil {
		b.Release()
	}
}

func TestCancelWhileQueuedReleasesNothing(t *testing.T) {
	s, reg := newTestSched(t, Config{MaxConcurrent: 1})
	hold, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Request{})
		errc <- err
	}()
	waitQueueDepth(t, s, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	waitQueueDepth(t, s, 0)
	if got := reg.Values()["sched_canceled_while_queued_total"]; got != 1 {
		t.Errorf("sched_canceled_while_queued_total = %d, want 1", got)
	}
	// The slot the holder owns must be intact and reusable.
	hold.Release()
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit after canceled waiter: %v", err)
	}
	a.Release()
}

func TestCloseFailsWaitersAndAdmits(t *testing.T) {
	s, _ := newTestSched(t, Config{MaxConcurrent: 1})
	hold, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(context.Background(), Request{})
		errc <- err
	}()
	waitQueueDepth(t, s, 1)
	go s.Close() // Close blocks on workers; run async and just check waiters
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("waiter after Close got %v, want ErrClosed", err)
	}
	if _, err := s.Admit(context.Background(), Request{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after Close = %v, want ErrClosed", err)
	}
	hold.Release()
}

// TestUnitToCorePinning: the scheduler must preserve RunParallel's placement
// contract — unit i runs on virtual core i mod Workers(), ascending per core.
func TestUnitToCorePinning(t *testing.T) {
	s, _ := newTestSched(t, Config{Workers: 4, MaxConcurrent: 2})
	qc := qef.NewContext(qef.ModeDPU)
	a, err := s.Admit(context.Background(), Request{Cores: qc.Workers()})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer a.Release()
	qc.Exec = a

	const n = 100
	var mu sync.Mutex
	perCore := make(map[int][]int)
	units := make([]qef.WorkUnit, n)
	for i := range units {
		i := i
		units[i] = func(tc *qef.TaskCtx) error {
			mu.Lock()
			perCore[tc.CoreID] = append(perCore[tc.CoreID], i)
			mu.Unlock()
			return nil
		}
	}
	if err := qc.RunParallel(units); err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	w := qc.Workers()
	total := 0
	for core, idxs := range perCore {
		total += len(idxs)
		for j, idx := range idxs {
			if idx%w != core {
				t.Fatalf("unit %d ran on core %d, want core %d", idx, core, idx%w)
			}
			if j > 0 && idx <= idxs[j-1] {
				t.Fatalf("core %d ran units out of order: %v", core, idxs)
			}
		}
	}
	if total != n {
		t.Fatalf("ran %d units, want %d", total, n)
	}
}

// TestDPUAccountingMatchesSerial: simulated time and cycle counters of a
// scheduled run must be identical to the same work run on context-owned
// goroutines, because the unit→core mapping is preserved.
func TestDPUAccountingMatchesSerial(t *testing.T) {
	mkUnits := func() []qef.WorkUnit {
		units := make([]qef.WorkUnit, 64)
		for i := range units {
			cy := dpu.Cycles(1000 * (i + 1))
			units[i] = func(tc *qef.TaskCtx) error {
				tc.Core.Charge(cy)
				return nil
			}
		}
		return units
	}

	base := qef.NewContext(qef.ModeDPU)
	if err := base.RunParallel(mkUnits()); err != nil {
		t.Fatalf("baseline RunParallel: %v", err)
	}

	s, _ := newTestSched(t, Config{Workers: 3, MaxConcurrent: 2})
	qc := qef.NewContext(qef.ModeDPU)
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer a.Release()
	qc.Exec = a
	if err := qc.RunParallel(mkUnits()); err != nil {
		t.Fatalf("scheduled RunParallel: %v", err)
	}

	if got, want := qc.SimElapsed(), base.SimElapsed(); got != want {
		t.Errorf("scheduled SimElapsed = %g, serial = %g", got, want)
	}
	for i, co := range qc.SoC.Cores() {
		if got, want := co.Cycles(), base.SoC.Core(i).Cycles(); got != want {
			t.Errorf("core %d cycles = %d, serial = %d", i, got, want)
		}
	}
}

// TestFirstErrorDeterministic: with two always-failing units, the returned
// error is always the lowest-indexed one, and every unit below it ran.
func TestFirstErrorDeterministic(t *testing.T) {
	s, _ := newTestSched(t, Config{Workers: 4})
	for trial := 0; trial < 20; trial++ {
		qc := qef.NewContext(qef.ModeX86)
		a, err := s.Admit(context.Background(), Request{})
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		qc.Exec = a
		var ran [40]atomic.Bool
		units := make([]qef.WorkUnit, len(ran))
		for i := range units {
			i := i
			units[i] = func(tc *qef.TaskCtx) error {
				ran[i].Store(true)
				if i == 13 || i == 29 {
					return fmt.Errorf("boom %d", i)
				}
				return nil
			}
		}
		err = qc.RunParallel(units)
		a.Release()
		if err == nil || err.Error() != "qef: work unit on core "+fmt.Sprint(13%qc.Workers())+": boom 13" {
			t.Fatalf("trial %d: error = %v, want deterministic boom 13", trial, err)
		}
		for i := 0; i < 13; i++ {
			if !ran[i].Load() {
				t.Fatalf("trial %d: unit %d below first failure did not run", trial, i)
			}
		}
	}
}

// TestCanceledContextFailsUnits: a pre-canceled Go context fails the batch
// with context.Canceled before any unit body runs.
func TestCanceledContextFailsUnits(t *testing.T) {
	s, _ := newTestSched(t, Config{})
	qc := qef.NewContext(qef.ModeX86)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer a.Release()
	qc.Exec = a
	qc.SetGoContext(ctx)
	var bodies atomic.Int64
	units := make([]qef.WorkUnit, 8)
	for i := range units {
		units[i] = func(tc *qef.TaskCtx) error { bodies.Add(1); return nil }
	}
	if err := qc.RunParallel(units); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallel with canceled ctx = %v, want context.Canceled", err)
	}
	if n := bodies.Load(); n != 0 {
		t.Errorf("%d unit bodies ran after cancellation, want 0", n)
	}
}

// TestRoundRobinInterleavesQueries: with one shared worker and two active
// single-strand queries, dispatch must alternate unit-by-unit — a long batch
// cannot starve the other query.
func TestRoundRobinInterleavesQueries(t *testing.T) {
	s, _ := newTestSched(t, Config{Workers: 1, MaxConcurrent: 2})

	type ev struct{ q, idx int }
	var mu sync.Mutex
	var order []ev
	record := func(q int) func(i int) qef.WorkUnit {
		return func(i int) qef.WorkUnit {
			return func(tc *qef.TaskCtx) error {
				mu.Lock()
				order = append(order, ev{q, i})
				mu.Unlock()
				return nil
			}
		}
	}

	qcA, qcB := oneCoreCtx(), oneCoreCtx()
	admA, err := s.Admit(context.Background(), Request{Cores: 1})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	defer admA.Release()
	admB, err := s.Admit(context.Background(), Request{Cores: 1})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	defer admB.Release()
	qcA.Exec, qcB.Exec = admA, admB

	// A's first unit blocks until B's batch is enqueued, so from the second
	// decision on both queries are visibly active to the single worker.
	gate := make(chan struct{})
	aStarted := make(chan struct{})
	mkA := record(0)
	unitsA := make([]qef.WorkUnit, 4)
	for i := range unitsA {
		i := i
		inner := mkA(i)
		unitsA[i] = func(tc *qef.TaskCtx) error {
			if i == 0 {
				close(aStarted)
				<-gate
			}
			return inner(tc)
		}
	}
	mkB := record(1)
	unitsB := []qef.WorkUnit{mkB(0), mkB(1)}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := qcA.RunParallel(unitsA); err != nil {
			t.Errorf("A: %v", err)
		}
	}()
	<-aStarted
	go func() {
		defer wg.Done()
		if err := qcB.RunParallel(unitsB); err != nil {
			t.Errorf("B: %v", err)
		}
	}()
	// B's strand is enqueued (the worker is parked inside A0): release A0
	// only once the scheduler sees it.
	waitRunnable(t, s, 1)
	close(gate)
	wg.Wait()

	want := []ev{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {0, 3}}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want strict round-robin %v", order, want)
		}
	}
}

// TestWeightedRoundRobin: a weight-2 query receives two consecutive units
// per turn against a weight-1 query.
func TestWeightedRoundRobin(t *testing.T) {
	s, _ := newTestSched(t, Config{Workers: 1, MaxConcurrent: 2})

	type ev struct{ q, idx int }
	var mu sync.Mutex
	var order []ev

	qcA, qcB := oneCoreCtx(), oneCoreCtx()
	admA, err := s.Admit(context.Background(), Request{Cores: 1, Weight: 1})
	if err != nil {
		t.Fatalf("Admit A: %v", err)
	}
	defer admA.Release()
	admB, err := s.Admit(context.Background(), Request{Cores: 1, Weight: 2})
	if err != nil {
		t.Fatalf("Admit B: %v", err)
	}
	defer admB.Release()
	qcA.Exec, qcB.Exec = admA, admB

	gate := make(chan struct{})
	aStarted := make(chan struct{})
	unitsA := make([]qef.WorkUnit, 3)
	for i := range unitsA {
		i := i
		unitsA[i] = func(tc *qef.TaskCtx) error {
			if i == 0 {
				close(aStarted)
				<-gate
			}
			mu.Lock()
			order = append(order, ev{0, i})
			mu.Unlock()
			return nil
		}
	}
	unitsB := make([]qef.WorkUnit, 4)
	for i := range unitsB {
		i := i
		unitsB[i] = func(tc *qef.TaskCtx) error {
			mu.Lock()
			order = append(order, ev{1, i})
			mu.Unlock()
			return nil
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := qcA.RunParallel(unitsA); err != nil {
			t.Errorf("A: %v", err)
		}
	}()
	<-aStarted
	go func() {
		defer wg.Done()
		if err := qcB.RunParallel(unitsB); err != nil {
			t.Errorf("B: %v", err)
		}
	}()
	waitRunnable(t, s, 1)
	close(gate)
	wg.Wait()

	// A0 was already running (its turn), then B gets 2, A 1, B 2, A 1.
	want := []ev{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {1, 2}, {1, 3}, {0, 2}}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want weighted round-robin %v", order, want)
		}
	}
}

// TestConcurrentStress fires many concurrent queries' batches through one
// scheduler and checks every unit runs exactly once. Run with -race.
func TestConcurrentStress(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := testStressSeed; s != 0 {
		seed = s
	}
	t.Logf("stress seed %d (set testStressSeed to replay)", seed)
	stressOnce(t, seed)
}

// testStressSeed pins TestConcurrentStress to a deterministic schedule
// shape for replaying failures; 0 means a fresh seed per run.
var testStressSeed int64 = 0

// TestConcurrentStressSeeded is the deterministic-replay variant: a fixed
// seed, so the batch sizes, weights and failure injections are reproducible.
func TestConcurrentStressSeeded(t *testing.T) {
	stressOnce(t, 0x5EED5EED)
}

func stressOnce(t *testing.T, seed int64) {
	s, _ := newTestSched(t, Config{Workers: 8, MaxConcurrent: 6, MaxQueued: 64})
	src := rand.New(rand.NewSource(seed))
	const clients = 16
	type job struct {
		batches []int
		failAt  int // unit index that fails in the first batch; -1 none
	}
	jobs := make([]job, clients)
	for i := range jobs {
		nb := 1 + src.Intn(3)
		jobs[i].batches = make([]int, nb)
		for b := range jobs[i].batches {
			jobs[i].batches[b] = 1 + src.Intn(50)
		}
		jobs[i].failAt = -1
		if src.Intn(4) == 0 {
			jobs[i].failAt = src.Intn(jobs[i].batches[0])
		}
	}

	var ranUnits atomic.Int64
	var wantUnits int64
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			qc := qef.NewContext(qef.ModeDPU)
			a, err := s.Admit(context.Background(), Request{Weight: 1 + (j.failAt+2)%2})
			if err != nil {
				t.Errorf("Admit: %v", err)
				return
			}
			defer a.Release()
			qc.Exec = a
			for b, n := range j.batches {
				units := make([]qef.WorkUnit, n)
				for u := range units {
					u := u
					fail := b == 0 && u == j.failAt
					units[u] = func(tc *qef.TaskCtx) error {
						tc.Core.Charge(100)
						ranUnits.Add(1)
						if fail {
							return fmt.Errorf("injected failure")
						}
						return nil
					}
				}
				err := qc.RunParallel(units)
				if j.failAt >= 0 && b == 0 {
					if err == nil {
						t.Errorf("batch with injected failure returned nil")
					}
				} else if err != nil {
					t.Errorf("batch error: %v", err)
				}
			}
		}(jobs[i])
	}
	for _, j := range jobs {
		for _, n := range j.batches {
			wantUnits += int64(n)
		}
	}
	wg.Wait()
	// Failed batches skip units above the failure index, so ran <= want;
	// it must never exceed it (no unit runs twice).
	if got := ranUnits.Load(); got > wantUnits {
		t.Fatalf("ran %d units, more than the %d submitted", got, wantUnits)
	}
}

// TestNoWorkerLeakAfterClose: Close must terminate the worker pool.
func TestNoWorkerLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 16})
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	qc := qef.NewContext(qef.ModeX86)
	qc.Exec = a
	if err := qc.RunParallel([]qef.WorkUnit{func(tc *qef.TaskCtx) error { return nil }}); err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	a.Release()
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunUnitsAfterRelease must fail rather than touch freed accounting.
func TestRunUnitsAfterRelease(t *testing.T) {
	s, _ := newTestSched(t, Config{})
	a, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	a.Release()
	qc := qef.NewContext(qef.ModeX86)
	qc.Exec = a
	if err := qc.RunParallel([]qef.WorkUnit{func(tc *qef.TaskCtx) error { return nil }}); err == nil {
		t.Fatal("RunUnits after Release succeeded, want error")
	}
}
