package storage

import (
	"fmt"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// BuildOptions tunes the physical layout produced by a TableBuilder.
type BuildOptions struct {
	// Partitions is the number of horizontal partitions (default 1).
	Partitions int
	// PartitionKey is the column hashed to route rows to partitions; -1
	// (default with Partitions == 1) assigns chunks round-robin.
	PartitionKey int
	// ChunkRows is the rows-per-chunk target (default DefaultChunkRows,
	// which makes 4-byte vectors exactly the 16 KiB sweet spot).
	ChunkRows int
	// TryRLE enables the RLE layer on vectors where it compresses.
	TryRLE bool
	// SharedDicts, when non-nil, supplies the dictionary for string columns
	// (nil entries still get a fresh one). The tray loader passes the host
	// table's dictionaries so every node shard encodes values identically —
	// group keys, sort ranks and literals then compare across nodes without
	// recoding.
	SharedDicts []*encoding.Dict
}

func (o *BuildOptions) normalize() {
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = DefaultChunkRows
	}
}

// TableBuilder accumulates rows and produces an immutable base Table. The
// two-phase design mirrors the LOAD path of §4.4: scan threads buffer
// records, then the encoded columnar layout is built in one pass with the
// final widths, scales and statistics.
type TableBuilder struct {
	name   string
	schema *Schema
	meta   []ColumnMeta
	opts   BuildOptions

	cols       [][]int64 // buffered encoded values, per column
	exceptions []map[int]encoding.Decimal
	stats      *statsBuilder
	scratch    []int64
}

// NewTableBuilder creates a builder. Decimal columns use the scale from the
// schema type; string columns get a fresh dictionary.
func NewTableBuilder(name string, schema *Schema, opts BuildOptions) *TableBuilder {
	opts.normalize()
	b := &TableBuilder{
		name:       name,
		schema:     schema,
		opts:       opts,
		cols:       make([][]int64, schema.NumCols()),
		exceptions: make([]map[int]encoding.Decimal, schema.NumCols()),
		stats:      newStatsBuilder(schema.NumCols()),
		meta:       make([]ColumnMeta, schema.NumCols()),
		scratch:    make([]int64, schema.NumCols()),
	}
	for i := range b.meta {
		def := schema.Col(i)
		b.meta[i] = ColumnMeta{Def: def, Scale: def.Type.Scale}
		if def.Type.Kind == coltypes.KindString {
			if i < len(opts.SharedDicts) && opts.SharedDicts[i] != nil {
				b.meta[i].Dict = opts.SharedDicts[i]
			} else {
				b.meta[i].Dict = encoding.NewDict()
			}
		}
	}
	return b
}

// Append adds one row of logical values.
func (b *TableBuilder) Append(row []Value) error {
	if len(row) != b.schema.NumCols() {
		return fmt.Errorf("storage: row has %d values, schema has %d columns", len(row), b.schema.NumCols())
	}
	for c, v := range row {
		enc, exc, err := b.encode(c, v)
		if err != nil {
			return err
		}
		if exc != nil {
			if b.exceptions[c] == nil {
				b.exceptions[c] = make(map[int]encoding.Decimal)
			}
			b.exceptions[c][len(b.cols[c])] = *exc
		}
		b.cols[c] = append(b.cols[c], enc)
		b.scratch[c] = enc
	}
	b.stats.addRow(b.scratch)
	return nil
}

func (b *TableBuilder) encode(c int, v Value) (int64, *encoding.Decimal, error) {
	m := &b.meta[c]
	want := m.Def.Type.Kind
	if v.Kind != want {
		return 0, nil, fmt.Errorf("storage: column %s expects %v, got %v", m.Def.Name, want, v.Kind)
	}
	switch want {
	case coltypes.KindString:
		return int64(m.Dict.Add(v.Str)), nil, nil
	case coltypes.KindDecimal:
		if u, ok := v.Dec.Rescale(m.Scale); ok {
			return u, nil, nil
		}
		d := v.Dec
		approx := int64(0)
		if diff := int(d.Scale - m.Scale); diff > 0 && diff <= encoding.MaxScale {
			approx = d.Unscaled / encoding.Pow10(diff)
		}
		return approx, &d, nil
	default:
		return v.Int, nil, nil
	}
}

// Rows returns the number of buffered rows.
func (b *TableBuilder) Rows() int {
	if len(b.cols) == 0 {
		return 0
	}
	return len(b.cols[0])
}

// Build finalizes the table: widths are chosen from the observed domains,
// rows are routed to partitions, chunk vectors are cut at the 16 KiB sweet
// spot, and RLE is applied where it pays.
func (b *TableBuilder) Build() (*Table, error) {
	n := 0
	if b.schema.NumCols() > 0 {
		n = len(b.cols[0])
	}
	stats := b.stats.build()
	// Choose physical widths from observed min/max.
	for c := range b.meta {
		cs := stats.Cols[c]
		if n == 0 {
			b.meta[c].Width = coltypes.W8
			continue
		}
		b.meta[c].Width = coltypes.WidthFor(cs.Min, cs.Max)
	}

	// Route rows to partitions.
	rowPart := make([]int, n)
	switch {
	case b.opts.Partitions == 1:
		// all zero
	case b.opts.PartitionKey >= 0:
		key := b.cols[b.opts.PartitionKey]
		p := b.opts.Partitions
		for i, k := range key {
			rowPart[i] = int(uint64(k) % uint64(p))
		}
	default:
		p := b.opts.Partitions
		for i := range rowPart {
			rowPart[i] = (i / b.opts.ChunkRows) % p
		}
	}

	parts := make([]*Partition, b.opts.Partitions)
	for i := range parts {
		parts[i] = &Partition{}
	}
	// Per-partition row index lists, order-preserving.
	perPart := make([][]int, b.opts.Partitions)
	for i := 0; i < n; i++ {
		perPart[rowPart[i]] = append(perPart[rowPart[i]], i)
	}
	for p, rows := range perPart {
		for lo := 0; lo < len(rows); lo += b.opts.ChunkRows {
			hi := lo + b.opts.ChunkRows
			if hi > len(rows) {
				hi = len(rows)
			}
			chunkRows := rows[lo:hi]
			vecs := make([]*Vector, b.schema.NumCols())
			for c := range vecs {
				data := coltypes.New(b.meta[c].Width, len(chunkRows))
				var exc map[int]encoding.Decimal
				for j, src := range chunkRows {
					data.Set(j, b.cols[c][src])
					if e, ok := b.exceptions[c][src]; ok {
						if exc == nil {
							exc = make(map[int]encoding.Decimal)
						}
						exc[j] = e
					}
				}
				var v *Vector
				if b.opts.TryRLE {
					if r, ok := encoding.WorthRLE(data); ok {
						v = NewRLEVector(r)
						b.meta[c].RLE = true
					}
				}
				if v == nil {
					v = NewVector(data)
				}
				v.SetExceptions(exc)
				vecs[c] = v
			}
			parts[p].AppendChunk(NewChunk(vecs))
		}
	}

	t := &Table{
		name:   b.name,
		schema: b.schema,
		meta:   b.meta,
		parts:  parts,
		stats:  stats,
	}
	t.tracker = NewTracker(t)
	return t, nil
}

// MustBuild builds or panics.
func (b *TableBuilder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
