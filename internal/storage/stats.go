package storage

// Table statistics (paper §3.4: "the RAPID metadata holds ... table
// statistics"). The RAPID QComp cost model and the partition-scheme
// optimizer consume these; the host database is the source on real systems,
// here they are computed at load time.

// ColStats summarizes one column.
type ColStats struct {
	Min, Max int64 // encoded domain bounds
	NDV      int64 // number of distinct values (exact up to ndvExactLimit)
	Exact    bool  // NDV is exact
}

// TableStats summarizes a table.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// ndvExactLimit caps the exact distinct-count tracking per column.
const ndvExactLimit = 1 << 21

// statsBuilder accumulates statistics during load.
type statsBuilder struct {
	rows int64
	cols []colStatsBuilder
}

type colStatsBuilder struct {
	min, max int64
	seen     map[int64]struct{}
	approx   bool
	any      bool
}

func newStatsBuilder(numCols int) *statsBuilder {
	sb := &statsBuilder{cols: make([]colStatsBuilder, numCols)}
	for i := range sb.cols {
		sb.cols[i].seen = make(map[int64]struct{})
	}
	return sb
}

func (sb *statsBuilder) addRow(encoded []int64) {
	sb.rows++
	for i, v := range encoded {
		c := &sb.cols[i]
		if !c.any {
			c.min, c.max, c.any = v, v, true
		} else {
			if v < c.min {
				c.min = v
			}
			if v > c.max {
				c.max = v
			}
		}
		if !c.approx {
			c.seen[v] = struct{}{}
			if len(c.seen) > ndvExactLimit {
				c.approx = true
				c.seen = nil
			}
		}
	}
}

func (sb *statsBuilder) build() *TableStats {
	ts := &TableStats{Rows: sb.rows, Cols: make([]ColStats, len(sb.cols))}
	for i := range sb.cols {
		c := &sb.cols[i]
		cs := ColStats{Min: c.min, Max: c.max}
		if c.approx {
			// Conservative estimate: domain-width bounded by row count.
			cs.NDV = sb.rows
			if width := c.max - c.min + 1; width > 0 && width < cs.NDV {
				cs.NDV = width
			}
			cs.Exact = false
		} else {
			cs.NDV = int64(len(c.seen))
			cs.Exact = true
		}
		// The seen map has served its purpose; release it so a finished (or
		// kept-around) builder does not pin up to ndvExactLimit entries per
		// column for its remaining lifetime.
		c.seen = nil
		ts.Cols[i] = cs
	}
	return ts
}
