// Package storage implements RAPID's in-memory data and storage model
// (paper §4): relational tables split into horizontal partitions, each
// partition holding chunks, each chunk storing its columns as flat
// fixed-width vectors (16 KiB sweet spot), all encoded per §4.2 (DSB,
// dictionary, optional RLE). It also implements the update model of §4.3:
// SCN-stamped update units (UU) applied through a tracker so queries read a
// consistent snapshot.
package storage

import (
	"fmt"

	"rapid/internal/coltypes"
)

// ColumnDef declares one column of a table schema.
type ColumnDef struct {
	Name string
	Type coltypes.Type
}

// Schema is an ordered set of column definitions with name lookup.
type Schema struct {
	cols   []ColumnDef
	byName map[string]int
}

// NewSchema builds a schema; column names must be unique and non-empty.
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	s := &Schema{cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema builds a schema and panics on error (static schemas).
func MustSchema(cols ...ColumnDef) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the column count.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the definition of column i.
func (s *Schema) Col(i int) ColumnDef { return s.cols[i] }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// ColNames returns the column names in order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}
