package storage

import (
	"fmt"
	"testing"

	"rapid/internal/coltypes"
)

func lineitemSchema() *Schema {
	return MustSchema(
		ColumnDef{Name: "l_orderkey", Type: coltypes.Int()},
		ColumnDef{Name: "l_quantity", Type: coltypes.Int()},
		ColumnDef{Name: "l_extendedprice", Type: coltypes.Decimal(2)},
		ColumnDef{Name: "l_shipdate", Type: coltypes.Date()},
		ColumnDef{Name: "l_returnflag", Type: coltypes.String()},
	)
}

func buildTestTable(t *testing.T, rows int, opts BuildOptions) *Table {
	t.Helper()
	b := NewTableBuilder("lineitem", lineitemSchema(), opts)
	flags := []string{"A", "N", "R"}
	for i := 0; i < rows; i++ {
		err := b.Append([]Value{
			IntValue(int64(i / 4)),
			IntValue(int64(i%50 + 1)),
			DecString(fmt.Sprintf("%d.%02d", 100+i%900, i%100)),
			DateValue(1995, 1+(i%12), 1+(i%28)),
			StrValue(flags[i%3]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestSchema(t *testing.T) {
	s := lineitemSchema()
	if s.NumCols() != 5 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.ColIndex("l_shipdate") != 3 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if s.Col(0).Name != "l_orderkey" {
		t.Fatal("Col wrong")
	}
	if len(s.ColNames()) != 5 || s.ColNames()[4] != "l_returnflag" {
		t.Fatal("ColNames wrong")
	}
	if _, err := NewSchema(ColumnDef{Name: "a"}, ColumnDef{Name: "a"}); err == nil {
		t.Fatal("duplicate columns should fail")
	}
	if _, err := NewSchema(ColumnDef{Name: ""}); err == nil {
		t.Fatal("empty name should fail")
	}
}

func TestValues(t *testing.T) {
	if IntValue(7).String() != "7" {
		t.Fatal("int value")
	}
	if DecString("1.25").String() != "1.25" {
		t.Fatal("dec value")
	}
	if StrValue("hi").String() != "hi" {
		t.Fatal("str value")
	}
	if BoolValue(true).String() != "true" || BoolValue(false).String() != "false" {
		t.Fatal("bool value")
	}
	d := DateValue(1995, 3, 15)
	if DateToString(d.Days()) != "1995-03-15" {
		t.Fatalf("date round trip: %s", DateToString(d.Days()))
	}
	p := MustParseDate("1998-12-01")
	if DateToString(p.Days()) != "1998-12-01" {
		t.Fatal("ParseDate round trip")
	}
	if _, err := ParseDate("12/01/1998"); err == nil {
		t.Fatal("bad date should fail")
	}
	if DateValue(1970, 1, 1).Days() != 0 {
		t.Fatal("epoch should be day 0")
	}
	if !IntValue(5).Equal(IntValue(5)) || IntValue(5).Equal(IntValue(6)) {
		t.Fatal("Equal int")
	}
	if !DecString("1.50").Equal(DecString("1.5")) {
		t.Fatal("Equal should compare decimals numerically")
	}
	if IntValue(1).Equal(BoolValue(true)) {
		t.Fatal("Equal must respect kinds")
	}
}

func TestBuildLayout(t *testing.T) {
	tbl := buildTestTable(t, 10000, BuildOptions{ChunkRows: 1024})
	if tbl.Rows() != 10000 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if tbl.NumPartitions() != 1 {
		t.Fatalf("partitions = %d", tbl.NumPartitions())
	}
	p := tbl.Partition(0)
	if p.NumChunks() != 10 { // ceil(10000/1024) = 10
		t.Fatalf("chunks = %d", p.NumChunks())
	}
	if p.Chunk(0).Rows() != 1024 || p.Chunk(9).Rows() != 10000-9*1024 {
		t.Fatalf("chunk sizes: %d, %d", p.Chunk(0).Rows(), p.Chunk(9).Rows())
	}
	// Width selection: quantity 1..50 fits W1; orderkey up to 2500 needs W2;
	// extendedprice scaled by 100 up to ~99999 needs W4.
	if tbl.Meta(1).Width != coltypes.W1 {
		t.Fatalf("quantity width = %d", tbl.Meta(1).Width)
	}
	if tbl.Meta(0).Width != coltypes.W2 {
		t.Fatalf("orderkey width = %d", tbl.Meta(0).Width)
	}
	if tbl.Meta(2).Width != coltypes.W4 {
		t.Fatalf("price width = %d", tbl.Meta(2).Width)
	}
	// Dictionary column: 3 distinct flags.
	if tbl.Meta(4).Dict.Len() != 3 {
		t.Fatalf("dict size = %d", tbl.Meta(4).Dict.Len())
	}
	// 16 KiB vector check: a 4-byte column of a full 4096-row chunk.
	tbl2 := buildTestTable(t, 4096, BuildOptions{})
	if got := tbl2.Partition(0).Chunk(0).Col(2).StoredBytes(); got != VectorSizeBytes {
		t.Fatalf("vector bytes = %d, want %d", got, VectorSizeBytes)
	}
}

func TestBuildStats(t *testing.T) {
	tbl := buildTestTable(t, 6000, BuildOptions{})
	st := tbl.Stats()
	if st.Rows != 6000 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	q := st.Cols[1] // quantity 1..50
	if q.Min != 1 || q.Max != 50 || q.NDV != 50 || !q.Exact {
		t.Fatalf("quantity stats = %+v", q)
	}
	f := st.Cols[4] // 3 flags
	if f.NDV != 3 {
		t.Fatalf("flag NDV = %d", f.NDV)
	}
}

func TestRoundTripValues(t *testing.T) {
	tbl := buildTestTable(t, 100, BuildOptions{})
	// Row 5: orderkey=1, quantity=6, price=105.05, date 1995-06-06, flag R.
	c := tbl.Partition(0).Chunk(0)
	get := func(col int) Value { return tbl.DecodeValue(col, c.Col(col).Data().Get(5)) }
	if get(0).Int != 1 || get(1).Int != 6 {
		t.Fatalf("ints wrong: %v %v", get(0), get(1))
	}
	if get(2).String() != "105.05" {
		t.Fatalf("price = %s", get(2))
	}
	if get(3).String() != "1995-06-06" {
		t.Fatalf("date = %s", get(3))
	}
	if get(4).Str != "R" {
		t.Fatalf("flag = %s", get(4))
	}
}

func TestHashPartitionedBuild(t *testing.T) {
	tbl := buildTestTable(t, 8000, BuildOptions{Partitions: 4, PartitionKey: 0, ChunkRows: 512})
	if tbl.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", tbl.NumPartitions())
	}
	total := 0
	for p := 0; p < 4; p++ {
		rows := tbl.Partition(p).Rows()
		total += rows
		if rows == 0 {
			t.Fatalf("partition %d empty", p)
		}
	}
	if total != 8000 {
		t.Fatalf("total rows = %d", total)
	}
	// Same key must land in the same partition: orderkey i/4 groups of 4.
	for p := 0; p < 4; p++ {
		part := tbl.Partition(p)
		for ci := 0; ci < part.NumChunks(); ci++ {
			data := part.Chunk(ci).Col(0).Data()
			for r := 0; r < data.Len(); r++ {
				if int(uint64(data.Get(r))%4) != p {
					t.Fatalf("key %d found in partition %d", data.Get(r), p)
				}
			}
		}
	}
}

func TestRLEBuild(t *testing.T) {
	s := MustSchema(
		ColumnDef{Name: "constant", Type: coltypes.Int()},
		ColumnDef{Name: "random", Type: coltypes.Int()},
	)
	b := NewTableBuilder("t", s, BuildOptions{TryRLE: true, ChunkRows: 1000})
	for i := 0; i < 1000; i++ {
		if err := b.Append([]Value{IntValue(42), IntValue(int64(i * 7919 % 1000))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.MustBuild()
	cChunk := tbl.Partition(0).Chunk(0)
	if !cChunk.Col(0).Compressed() {
		t.Fatal("constant column should be RLE")
	}
	if cChunk.Col(1).Compressed() {
		t.Fatal("random column should not be RLE")
	}
	// Decode must reproduce the data.
	d := cChunk.Col(0).Data()
	for i := 0; i < 1000; i++ {
		if d.Get(i) != 42 {
			t.Fatal("RLE decode wrong")
		}
	}
	if tbl.StoredBytes() <= 0 {
		t.Fatal("StoredBytes")
	}
}

func TestAppendErrors(t *testing.T) {
	b := NewTableBuilder("t", lineitemSchema(), BuildOptions{})
	if err := b.Append([]Value{IntValue(1)}); err == nil {
		t.Fatal("short row should fail")
	}
	if err := b.Append([]Value{
		StrValue("wrong"), IntValue(1), DecString("1"), DateValue(2000, 1, 1), StrValue("A"),
	}); err == nil {
		t.Fatal("kind mismatch should fail")
	}
}

func TestDSBExceptionAtLoad(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "d", Type: coltypes.Decimal(2)})
	b := NewTableBuilder("t", s, BuildOptions{})
	if err := b.Append([]Value{DecString("1.25")}); err != nil {
		t.Fatal(err)
	}
	// Scale 5 cannot be represented at common scale 2 -> exception.
	if err := b.Append([]Value{DecString("0.00001")}); err != nil {
		t.Fatal(err)
	}
	tbl := b.MustBuild()
	v := tbl.Partition(0).Chunk(0).Col(0)
	if !v.HasExceptions() {
		t.Fatal("expected exception value")
	}
	if _, ok := v.Exception(1); !ok {
		t.Fatal("row 1 should be the exception")
	}
	if _, ok := v.Exception(0); ok {
		t.Fatal("row 0 should not be an exception")
	}
	// Normal row decodes through the common path.
	if got := tbl.DecodeValue(0, v.Data().Get(0)); got.String() != "1.25" {
		t.Fatalf("row 0 = %s", got)
	}
}

func TestEmptyTable(t *testing.T) {
	b := NewTableBuilder("empty", lineitemSchema(), BuildOptions{})
	tbl := b.MustBuild()
	if tbl.Rows() != 0 {
		t.Fatal("empty table rows")
	}
	snap := tbl.Snapshot(LatestSCN)
	if snap.TotalRows() != 0 || len(snap.Chunks()) != 0 {
		t.Fatal("empty snapshot")
	}
}
