package storage

import (
	"testing"

	"rapid/internal/coltypes"
)

func TestChunkZonesAtBuild(t *testing.T) {
	tbl := simpleTable(t, 20) // id 0..19, val = id*10, ChunkRows 8
	s := tbl.Snapshot(LatestSCN)
	chunks := s.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	// First chunk holds id 0..7, val 0..70.
	z, ok := chunks[0].Zone(0)
	if !ok || z.Min != 0 || z.Max != 7 || z.Rows != 8 {
		t.Fatalf("chunk0 id zone = %+v ok=%v", z, ok)
	}
	z, ok = chunks[0].Zone(1)
	if !ok || z.Min != 0 || z.Max != 70 {
		t.Fatalf("chunk0 val zone = %+v ok=%v", z, ok)
	}
	// Last (short) chunk holds id 16..19.
	z, ok = chunks[2].Zone(0)
	if !ok || z.Min != 16 || z.Max != 19 || z.Rows != 4 {
		t.Fatalf("chunk2 id zone = %+v ok=%v", z, ok)
	}
	if !z.Contains(17) || z.Contains(3) {
		t.Fatal("Zone.Contains")
	}
	if _, ok := chunks[0].Zone(9); ok {
		t.Fatal("out-of-range column must report no zone")
	}
}

func TestChunkViewZoneAfterUpdates(t *testing.T) {
	tbl := simpleTable(t, 20)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Patch col 1 of a row in chunk 0: that column's zone is invalidated for
	// the patched chunk only; col 0 and other chunks keep their zones.
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 1, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 2}, Col: 1, Val: IntValue(100000)},
	}}))
	chunks := tbl.Snapshot(LatestSCN).Chunks()
	if _, ok := chunks[0].Zone(1); ok {
		t.Fatal("patched column must lose its zone")
	}
	if _, ok := chunks[0].Zone(0); !ok {
		t.Fatal("unpatched column must keep its zone")
	}
	if _, ok := chunks[1].Zone(1); !ok {
		t.Fatal("unpatched chunk must keep its zone")
	}

	// Deletes keep base zones: a superset zone can only under-prune.
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 2, Deletes: []RowRef{{Part: 0, Chunk: 1, Row: 0}}}))
	chunks = tbl.Snapshot(LatestSCN).Chunks()
	if z, ok := chunks[1].Zone(0); !ok || z.Min != 8 || z.Max != 15 {
		t.Fatalf("deleted chunk zone = %+v ok=%v", z, ok)
	}

	// Inserted rows surface through a delta chunk with no zones (never
	// prunable).
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 3, Inserts: [][]Value{
		{IntValue(500), IntValue(5000)},
	}}))
	chunks = tbl.Snapshot(LatestSCN).Chunks()
	last := chunks[len(chunks)-1]
	if last.Rows != 1 {
		t.Fatalf("delta chunk rows = %d", last.Rows)
	}
	if _, ok := last.Zone(0); ok {
		t.Fatal("delta chunk must report no zone")
	}
}

// TestStatsRefreshAfterUpdate is the regression test for the stale-statistics
// bug: Table.Stats() used to be computed once at load and never touched by
// Tracker.Apply, so a patch moving a value past the old maximum left the cost
// model — and any zone built from the table-wide stats — believing the old
// domain. The contract now is that [Min, Max] stays a superset of the live
// encoded domain across patches, inserts and deletes.
func TestStatsRefreshAfterUpdate(t *testing.T) {
	tbl := simpleTable(t, 20) // val in [0, 190]
	st := tbl.Stats()
	if st == nil || st.Cols[1].Max != 190 || st.Rows != 20 {
		t.Fatalf("seed stats = %+v", st)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	// Patch a value past the old maximum: bounds must widen immediately.
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 1, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 2}, Col: 1, Val: IntValue(100000)},
	}}))
	st = tbl.Stats()
	if st.Cols[1].Max < 100000 {
		t.Fatalf("stats stale after patch: max = %d, want >= 100000", st.Cols[1].Max)
	}
	if st.Cols[1].Exact {
		t.Fatal("NDV must turn inexact after a patch")
	}
	// Pruning correctness: a table-wide zone built from the refreshed stats
	// must admit the patched value.
	z := Zone{Min: st.Cols[1].Min, Max: st.Cols[1].Max, Rows: int(st.Rows)}
	if !z.Contains(100000) {
		t.Fatal("refreshed stats zone rejects the patched value")
	}

	// Insert below the old minimum: bounds widen down, rows go up.
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 2, Inserts: [][]Value{
		{IntValue(-5), IntValue(-7)},
	}}))
	st = tbl.Stats()
	if st.Cols[0].Min > -5 || st.Cols[1].Min > -7 {
		t.Fatalf("stats stale after insert: mins = %d, %d", st.Cols[0].Min, st.Cols[1].Min)
	}
	if st.Rows != 21 {
		t.Fatalf("rows = %d, want 21", st.Rows)
	}

	// Deletes never narrow bounds (conservative superset), but track rows.
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 3, Deletes: []RowRef{{Part: 0, Chunk: 0, Row: 2}}}))
	st = tbl.Stats()
	if st.Rows != 20 {
		t.Fatalf("rows = %d, want 20", st.Rows)
	}
	if st.Cols[1].Max < 100000 {
		t.Fatal("delete must not narrow bounds")
	}

	// Readers holding the old pointer are unaffected (copy-on-write).
	old := st
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 4, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 3}, Col: 0, Val: IntValue(1 << 30)},
	}}))
	if old.Cols[0].Max != st.Cols[0].Max {
		t.Fatal("stats must be copy-on-write")
	}
}

// TestStatsBuilderReleasesSeenMaps pins the distinct-tracking leak fix: the
// per-column seen maps (up to 2^21 entries each) must be released once the
// NDV is read out, whether the column stayed exact or tripped the limit.
func TestStatsBuilderReleasesSeenMaps(t *testing.T) {
	sb := newStatsBuilder(2)
	for i := int64(0); i < 100; i++ {
		sb.addRow([]int64{i, i % 3})
	}
	ts := sb.build()
	if ts.Cols[0].NDV != 100 || !ts.Cols[0].Exact {
		t.Fatalf("col0 stats = %+v", ts.Cols[0])
	}
	if ts.Cols[1].NDV != 3 {
		t.Fatalf("col1 NDV = %d", ts.Cols[1].NDV)
	}
	for i := range sb.cols {
		if sb.cols[i].seen != nil {
			t.Fatalf("col %d seen map retained after build", i)
		}
	}
}

func TestZoneEmptyChunk(t *testing.T) {
	s := MustSchema(ColumnDef{Name: "a", Type: coltypes.Int()})
	b := NewTableBuilder("e", s, BuildOptions{})
	tbl := b.MustBuild()
	for _, cv := range tbl.Snapshot(LatestSCN).Chunks() {
		if _, ok := cv.Zone(0); ok && cv.Rows == 0 {
			t.Fatal("empty chunk must report no zone")
		}
	}
}
