package storage

import (
	"testing"

	"rapid/internal/coltypes"
)

// Compaction edge cases: RLE-compressed tables, string columns (dictionary
// rebuild), multi-partition layouts and post-compaction updates.

func TestCompactWithRLEAndStrings(t *testing.T) {
	s := MustSchema(
		ColumnDef{Name: "id", Type: coltypes.Int()},
		ColumnDef{Name: "flag", Type: coltypes.String()},
		ColumnDef{Name: "constant", Type: coltypes.Int()},
	)
	b := NewTableBuilder("t", s, BuildOptions{ChunkRows: 64, TryRLE: true})
	flags := []string{"aa", "bb", "cc"}
	for i := 0; i < 500; i++ {
		if err := b.Append([]Value{
			IntValue(int64(i)),
			StrValue(flags[i%3]),
			IntValue(7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.MustBuild()
	if !tbl.Partition(0).Chunk(0).Col(2).Compressed() {
		t.Fatal("constant column should be RLE before compaction")
	}

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tbl.Tracker().Apply(UpdateUnit{
		SCN:     1,
		Inserts: [][]Value{{IntValue(9999), StrValue("dd"), IntValue(8)}},
		Deletes: []RowRef{{Part: 0, Chunk: 2, Row: 10}},
		Patches: []CellPatch{{Ref: RowRef{0, 0, 0}, Col: 1, Val: StrValue("zz")}},
	}))
	must(tbl.Compact())

	snap := tbl.Snapshot(LatestSCN)
	if snap.TotalRows() != 500 {
		t.Fatalf("rows after compact = %d", snap.TotalRows())
	}
	// Patched string and inserted string survive the dictionary rebuild.
	foundZZ, foundDD := false, false
	for _, cv := range snap.Chunks() {
		d := cv.Data(1)
		for r := 0; r < cv.Rows; r++ {
			switch tbl.DecodeValue(1, d.Get(r)).Str {
			case "zz":
				foundZZ = true
			case "dd":
				foundDD = true
			}
		}
	}
	if !foundZZ || !foundDD {
		t.Fatalf("strings lost in compaction: zz=%v dd=%v", foundZZ, foundDD)
	}
	// Post-compaction updates keep working (SCN continues past baseSCN).
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 2, Deletes: []RowRef{{0, 0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if tbl.Snapshot(LatestSCN).TotalRows() != 499 {
		t.Fatal("post-compaction delete lost")
	}
}

func TestCompactMultiPartition(t *testing.T) {
	s := MustSchema(
		ColumnDef{Name: "k", Type: coltypes.Int()},
		ColumnDef{Name: "v", Type: coltypes.Int()},
	)
	b := NewTableBuilder("t", s, BuildOptions{Partitions: 4, PartitionKey: 0, ChunkRows: 32})
	for i := 0; i < 400; i++ {
		if err := b.Append([]Value{IntValue(int64(i)), IntValue(int64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.MustBuild()
	if err := tbl.Tracker().Apply(UpdateUnit{
		SCN:     1,
		Inserts: [][]Value{{IntValue(1000), IntValue(2000)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	if tbl.NumPartitions() != 4 {
		t.Fatalf("partitions after compact = %d", tbl.NumPartitions())
	}
	snap := tbl.Snapshot(LatestSCN)
	if snap.TotalRows() != 401 {
		t.Fatalf("rows = %d", snap.TotalRows())
	}
	// Every (k, v) pair preserved.
	sum := int64(0)
	for _, cv := range snap.Chunks() {
		k, v := cv.Data(0), cv.Data(1)
		for r := 0; r < cv.Rows; r++ {
			if v.Get(r) != 2*k.Get(r) {
				t.Fatalf("pair broken: k=%d v=%d", k.Get(r), v.Get(r))
			}
			sum += k.Get(r)
		}
	}
	want := int64(399*400/2 + 1000)
	if sum != want {
		t.Fatalf("key sum = %d, want %d", sum, want)
	}
}

func TestSnapshotIsolationDuringCompact(t *testing.T) {
	// A snapshot taken before compaction still reads correct data after
	// (the snapshot holds its own unit list; base replacement swaps
	// atomically under the table lock).
	s := MustSchema(ColumnDef{Name: "v", Type: coltypes.Int()})
	b := NewTableBuilder("t", s, BuildOptions{ChunkRows: 16})
	for i := 0; i < 100; i++ {
		if err := b.Append([]Value{IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.MustBuild()
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 1, Inserts: [][]Value{{IntValue(500)}}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	after := tbl.Snapshot(LatestSCN)
	if after.TotalRows() != 101 {
		t.Fatalf("rows = %d", after.TotalRows())
	}
	if tbl.BaseSCN() != 1 || tbl.SCN() != 1 {
		t.Fatalf("SCNs: base=%d curr=%d", tbl.BaseSCN(), tbl.SCN())
	}
}
