package storage

import (
	"fmt"
	"sync"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// The update model of paper §4.3: changes arrive as SCN-stamped update units
// (UU). The tracker keeps applied units and serves queries the data version
// valid at their SCN, so update propagation and query processing proceed
// concurrently. Accumulated units are merged into base storage by Compact
// (the garbage-collection of outdated vectors the paper mentions).

// RowRef addresses a base row: partition, chunk, row-in-chunk.
type RowRef struct {
	Part, Chunk, Row int
}

// CellPatch updates a single cell of a base row.
type CellPatch struct {
	Ref RowRef
	Col int
	Val Value
}

// UpdateUnit is one SCN-stamped batch of changes.
type UpdateUnit struct {
	SCN     uint64
	Inserts [][]Value
	Deletes []RowRef
	Patches []CellPatch
}

type encPatch struct {
	ref RowRef
	col int
	enc int64
	exc *encoding.Decimal
}

type appliedUU struct {
	scn     uint64
	deletes []RowRef
	patches []encPatch
	inserts [][]int64 // encoded rows
}

// Tracker stores applied update units for a table and builds SCN-consistent
// snapshots.
type Tracker struct {
	t     *Table
	mu    sync.RWMutex
	units []appliedUU
}

// NewTracker creates an empty tracker for t.
func NewTracker(t *Table) *Tracker { return &Tracker{t: t} }

// Apply validates and applies an update unit. SCNs must be monotonically
// increasing per table.
func (tr *Tracker) Apply(uu UpdateUnit) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.t.mu.Lock()
	defer tr.t.mu.Unlock()
	if uu.SCN <= tr.t.currSCN {
		return fmt.Errorf("storage: UU SCN %d not newer than table SCN %d", uu.SCN, tr.t.currSCN)
	}
	a := appliedUU{scn: uu.SCN, deletes: uu.Deletes}
	for _, p := range uu.Patches {
		if err := tr.checkRef(p.Ref); err != nil {
			return err
		}
		enc, exc, err := tr.t.EncodeValue(p.Col, p.Val)
		if err != nil {
			return err
		}
		a.patches = append(a.patches, encPatch{ref: p.Ref, col: p.Col, enc: enc, exc: exc})
	}
	for _, d := range uu.Deletes {
		if err := tr.checkRef(d); err != nil {
			return err
		}
	}
	for _, row := range uu.Inserts {
		if len(row) != tr.t.schema.NumCols() {
			return fmt.Errorf("storage: insert row has %d values, want %d", len(row), tr.t.schema.NumCols())
		}
		enc := make([]int64, len(row))
		for c, v := range row {
			e, _, err := tr.t.EncodeValue(c, v)
			if err != nil {
				return err
			}
			enc[c] = e
		}
		a.inserts = append(a.inserts, enc)
	}
	// Epoch bump must precede unit publication: a cache validator that reads
	// the epoch after its computation can then never pair pre-mutation data
	// with a post-mutation epoch (the stale-hit direction). The reverse
	// window — epoch bumped, data not yet visible — only over-invalidates.
	tr.t.epoch.Add(1)
	tr.units = append(tr.units, a)
	tr.t.currSCN = uu.SCN
	tr.t.refreshStatsLocked(a)
	return nil
}

// refreshStatsLocked maintains conservative table statistics across an
// applied update unit (t.mu held). The contract the cost model and zone
// pruning rely on is that [Min, Max] stays a superset of the live encoded
// domain: patches and inserts widen the bounds to cover their values; the
// row count tracks inserts and deletes; NDV becomes inexact (a mutation can
// move it either way). Deletes never narrow bounds — a superset can only
// under-prune, never produce a wrong result. Compact recomputes exact
// statistics from scratch.
func (t *Table) refreshStatsLocked(a appliedUU) {
	if t.stats == nil {
		return
	}
	if len(a.patches) == 0 && len(a.inserts) == 0 && len(a.deletes) == 0 {
		return
	}
	// Copy-on-write: readers hold the pointer returned by Stats() without a
	// lock on its contents, so mutations build a fresh TableStats.
	ns := &TableStats{Rows: t.stats.Rows, Cols: append([]ColStats(nil), t.stats.Cols...)}
	widen := func(col int, v int64) {
		if col < 0 || col >= len(ns.Cols) {
			return
		}
		cs := &ns.Cols[col]
		if ns.Rows == 0 {
			cs.Min, cs.Max = v, v
		} else {
			if v < cs.Min {
				cs.Min = v
			}
			if v > cs.Max {
				cs.Max = v
			}
		}
		cs.Exact = false
	}
	for _, p := range a.patches {
		widen(p.col, p.enc)
	}
	for _, row := range a.inserts {
		for c, v := range row {
			widen(c, v)
		}
	}
	ns.Rows += int64(len(a.inserts)) - int64(len(a.deletes))
	if ns.Rows < 0 {
		ns.Rows = 0
	}
	if len(a.deletes) > 0 {
		for c := range ns.Cols {
			ns.Cols[c].Exact = false
		}
	}
	for c := range ns.Cols {
		if ns.Cols[c].NDV > ns.Rows && ns.Rows > 0 {
			ns.Cols[c].NDV = ns.Rows
		}
	}
	t.stats = ns
}

func (tr *Tracker) checkRef(r RowRef) error {
	if r.Part < 0 || r.Part >= len(tr.t.parts) {
		return fmt.Errorf("storage: partition %d out of range", r.Part)
	}
	p := tr.t.parts[r.Part]
	if r.Chunk < 0 || r.Chunk >= p.NumChunks() {
		return fmt.Errorf("storage: chunk %d out of range", r.Chunk)
	}
	if r.Row < 0 || r.Row >= p.Chunk(r.Chunk).Rows() {
		return fmt.Errorf("storage: row %d out of range", r.Row)
	}
	return nil
}

// PendingUnits returns the number of unmerged update units.
func (tr *Tracker) PendingUnits() int {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return len(tr.units)
}

// LatestSCN is the SCN snapshot marker meaning "newest visible version".
const LatestSCN = ^uint64(0)

// Snapshot is an SCN-consistent read view over a table: base chunks with
// the valid patches and deletes applied, plus the visible inserted rows.
type Snapshot struct {
	t     *Table
	scn   uint64
	units []appliedUU
}

// Snapshot builds a read view of the table at the given SCN.
func (t *Table) Snapshot(scn uint64) *Snapshot {
	t.tracker.mu.RLock()
	defer t.tracker.mu.RUnlock()
	s := &Snapshot{t: t, scn: scn}
	for _, u := range t.tracker.units {
		if u.scn <= scn {
			s.units = append(s.units, u)
		}
	}
	return s
}

// Table returns the snapshot's table.
func (s *Snapshot) Table() *Table { return s.t }

// SCN returns the snapshot SCN.
func (s *Snapshot) SCN() uint64 { return s.scn }

// ChunkView is a readable chunk of a snapshot. Deleted, when non-nil, marks
// rows that must be skipped.
type ChunkView struct {
	Rows    int
	Part    int
	Deleted *bits.Vector
	data    func(col int) coltypes.Data
	vector  func(col int) *Vector
	zone    func(col int) (Zone, bool)
}

// Data returns the (patched) column data of the view.
func (cv *ChunkView) Data(col int) coltypes.Data { return cv.data(col) }

// Zone returns the zone-map entry for a column of the view, when one is
// known to still bound the visible data. Patched columns and delta chunks
// report ok=false; views with deletions keep their base zones — a zone is
// then a superset of the live values, which can only under-prune.
func (cv *ChunkView) Zone(col int) (Zone, bool) {
	if cv.zone == nil {
		return Zone{}, false
	}
	return cv.zone(col)
}

// Vector returns the underlying base vector when the view is an unpatched
// base chunk; nil for delta chunks or patched views. Scans use it to reach
// DSB exception tables.
func (cv *ChunkView) Vector(col int) *Vector {
	if cv.vector == nil {
		return nil
	}
	return cv.vector(col)
}

// Chunks returns all visible chunks: the base chunks (patched as needed)
// followed by one delta chunk holding visible inserted rows, if any.
func (s *Snapshot) Chunks() []ChunkView {
	var views []ChunkView
	for pi, p := range s.t.parts {
		for ci := range p.chunks {
			views = append(views, s.baseChunkView(pi, ci))
		}
	}
	if delta := s.deltaChunkView(); delta != nil {
		views = append(views, *delta)
	}
	return views
}

// TotalRows returns the number of visible rows (excluding deletions).
func (s *Snapshot) TotalRows() int {
	n := 0
	for _, cv := range s.Chunks() {
		n += cv.Rows
		if cv.Deleted != nil {
			n -= cv.Deleted.Count()
		}
	}
	return n
}

func (s *Snapshot) baseChunkView(pi, ci int) ChunkView {
	chunk := s.t.parts[pi].chunks[ci]
	var deleted *bits.Vector
	type patch struct {
		row int
		col int
		enc int64
	}
	var patches []patch
	for _, u := range s.units {
		for _, d := range u.deletes {
			if d.Part == pi && d.Chunk == ci {
				if deleted == nil {
					deleted = bits.NewVector(chunk.Rows())
				}
				deleted.Set(d.Row)
			}
		}
		for _, p := range u.patches {
			if p.ref.Part == pi && p.ref.Chunk == ci {
				patches = append(patches, patch{row: p.ref.Row, col: p.col, enc: p.enc})
			}
		}
	}
	cv := ChunkView{
		Rows:    chunk.Rows(),
		Part:    pi,
		Deleted: deleted,
		vector:  func(col int) *Vector { return chunk.Col(col) },
	}
	if len(patches) == 0 {
		cv.data = func(col int) coltypes.Data { return chunk.Col(col).Data() }
		cv.zone = chunk.Zone
		return cv
	}
	patchedSet := make(map[int]bool, len(patches))
	for _, p := range patches {
		patchedSet[p.col] = true
	}
	cv.zone = func(col int) (Zone, bool) {
		if patchedSet[col] {
			return Zone{}, false
		}
		return chunk.Zone(col)
	}
	// Copy-on-patch: clone affected columns, widening if a patched value
	// does not fit the base width.
	patchedCols := make(map[int]coltypes.Data)
	cv.data = func(col int) coltypes.Data {
		if d, ok := patchedCols[col]; ok {
			return d
		}
		base := chunk.Col(col).Data()
		needsPatch := false
		needWide := false
		w := base.Width()
		for _, p := range patches {
			if p.col == col {
				needsPatch = true
				if p.enc < w.MinInt() || p.enc > w.MaxInt() {
					needWide = true
				}
			}
		}
		if !needsPatch {
			patchedCols[col] = base
			return base
		}
		var cp coltypes.Data
		if needWide {
			cp = coltypes.New(coltypes.W8, base.Len())
			for i := 0; i < base.Len(); i++ {
				cp.Set(i, base.Get(i))
			}
		} else {
			cp = base.NewSame(base.Len())
			cp.CopyFrom(0, base)
		}
		for _, p := range patches {
			if p.col == col {
				cp.Set(p.row, p.enc)
			}
		}
		patchedCols[col] = cp
		return cp
	}
	cv.vector = nil // patched views must not expose base exception tables
	return cv
}

func (s *Snapshot) deltaChunkView() *ChunkView {
	var rows [][]int64
	for _, u := range s.units {
		rows = append(rows, u.inserts...)
	}
	if len(rows) == 0 {
		return nil
	}
	cols := make([]coltypes.Data, s.t.schema.NumCols())
	cv := &ChunkView{Rows: len(rows), Part: 0}
	cv.data = func(col int) coltypes.Data {
		if cols[col] == nil {
			// Delta rows may exceed the base width; store wide.
			d := coltypes.New(coltypes.W8, len(rows))
			for i, r := range rows {
				d.Set(i, r[col])
			}
			cols[col] = d
		}
		return cols[col]
	}
	return cv
}

// Compact merges every applied update unit into base storage, rebuilding
// partitions and statistics, and clears the tracker. This is the background
// reclamation of outdated vectors (§4.3).
func (t *Table) Compact() error {
	t.tracker.mu.Lock()
	defer t.tracker.mu.Unlock()
	t.mu.Lock()
	scn := t.currSCN
	t.mu.Unlock()

	snap := &Snapshot{t: t, scn: scn, units: t.tracker.units}
	b := NewTableBuilder(t.name, t.schema, BuildOptions{
		Partitions: len(t.parts),
		ChunkRows:  chunkRowsOf(t),
	})
	for _, cv := range snap.Chunks() {
		cols := make([]coltypes.Data, t.schema.NumCols())
		for c := range cols {
			cols[c] = cv.Data(c)
		}
		for r := 0; r < cv.Rows; r++ {
			if cv.Deleted != nil && cv.Deleted.Test(r) {
				continue
			}
			row := make([]Value, len(cols))
			for c := range cols {
				row[c] = t.DecodeValue(c, cols[c].Get(r))
			}
			if err := b.Append(row); err != nil {
				return err
			}
		}
	}
	nt, err := b.Build()
	if err != nil {
		return err
	}
	// Same ordering contract as Tracker.Apply: bump before the rebuilt base
	// becomes visible so validators never certify mid-compaction reads.
	t.epoch.Add(1)
	t.mu.Lock()
	t.meta = nt.meta
	t.parts = nt.parts
	t.stats = nt.stats
	t.baseSCN = scn
	t.mu.Unlock()
	t.tracker.units = nil
	return nil
}

func chunkRowsOf(t *Table) int {
	for _, p := range t.parts {
		if p.NumChunks() > 0 {
			return p.Chunk(0).Rows()
		}
	}
	return DefaultChunkRows
}

// BaseSCN returns the SCN merged into base storage.
func (t *Table) BaseSCN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.baseSCN
}
