package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// ColumnMeta is the physical encoding chosen for one table column — the
// per-column entry of the RAPID metadata (§3.4).
type ColumnMeta struct {
	Def   ColumnDef
	Width coltypes.Width
	Scale int8           // DSB common scale (KindDecimal)
	Dict  *encoding.Dict // shared dictionary (KindString)
	RLE   bool           // chunks stored RLE-compressed where worthwhile
}

// Table is a loaded base relation: schema, physical metadata, horizontally
// partitioned columnar data, statistics and the SCN/update state of §3.3
// and §4.3.
type Table struct {
	name   string
	schema *Schema
	meta   []ColumnMeta
	parts  []*Partition
	stats  *TableStats
	shard  *ShardMap // tray shard map this table is one shard of (nil single-node)

	mu      sync.RWMutex
	baseSCN uint64 // SCN up to which changes are merged into base data
	currSCN uint64 // SCN of the newest applied update unit
	tracker *Tracker

	// epoch counts visible-data generations: Tracker.Apply and Compact bump
	// it strictly BEFORE publishing the new data (DESIGN.md §10). A reader
	// that captures the epoch, computes, and sees the same epoch afterwards
	// is guaranteed its computation saw no concurrently published mutation;
	// the converse spurious case (epoch moved, data unchanged yet) only
	// causes a harmless cache invalidation.
	epoch atomic.Uint64
}

// DataEpoch returns the table's visible-data generation counter. Lock-free;
// see the epoch field contract.
func (t *Table) DataEpoch() uint64 { return t.epoch.Load() }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Meta returns the physical metadata of column i.
func (t *Table) Meta(i int) ColumnMeta { return t.meta[i] }

// Stats returns the current table statistics. The returned TableStats is
// immutable: updates install a fresh copy under t.mu (see refreshStatsLocked),
// so callers may keep reading it without holding the lock.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// NumPartitions returns the partition count.
func (t *Table) NumPartitions() int { return len(t.parts) }

// Partition returns partition i.
func (t *Table) Partition(i int) *Partition { return t.parts[i] }

// Rows returns the base row count (excluding unmerged update units).
func (t *Table) Rows() int {
	n := 0
	for _, p := range t.parts {
		n += p.Rows()
	}
	return n
}

// SCN returns the newest change SCN applied to this table in RAPID. A query
// is admissible only if every journal entry up to the query's SCN has been
// propagated (paper §3.3); the host database compares against this value.
func (t *Table) SCN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.currSCN
}

// Tracker returns the update tracker.
func (t *Table) Tracker() *Tracker {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tracker
}

// EncodeValue encodes a logical value into the physical representation of
// column c, returning the encoded integer and, for decimals that do not fit
// the common scale, the exact exception value.
func (t *Table) EncodeValue(c int, v Value) (int64, *encoding.Decimal, error) {
	m := &t.meta[c]
	want := m.Def.Type.Kind
	if v.Kind != want {
		return 0, nil, fmt.Errorf("storage: column %s expects %v, got %v", m.Def.Name, want, v.Kind)
	}
	switch want {
	case coltypes.KindString:
		return int64(m.Dict.Add(v.Str)), nil, nil
	case coltypes.KindDecimal:
		if u, ok := v.Dec.Rescale(m.Scale); ok {
			return u, nil, nil
		}
		d := v.Dec
		// Best-effort truncation keeps ordering roughly right (§4.2).
		approx := int64(0)
		if diff := int(d.Scale - m.Scale); diff > 0 && diff <= encoding.MaxScale {
			approx = d.Unscaled / encoding.Pow10(diff)
		}
		return approx, &d, nil
	default:
		return v.Int, nil, nil
	}
}

// DecodeValue renders the encoded integer of column c back to a logical
// value.
func (t *Table) DecodeValue(c int, enc int64) Value {
	m := &t.meta[c]
	switch m.Def.Type.Kind {
	case coltypes.KindString:
		return StrValue(m.Dict.Value(int32(enc)))
	case coltypes.KindDecimal:
		return DecValue(encoding.Decimal{Unscaled: enc, Scale: m.Scale})
	case coltypes.KindDate:
		return Value{Kind: coltypes.KindDate, Int: enc}
	case coltypes.KindBool:
		return BoolValue(enc != 0)
	default:
		return IntValue(enc)
	}
}

// StoredBytes returns the total columnar storage footprint.
func (t *Table) StoredBytes() int {
	n := 0
	for _, p := range t.parts {
		for _, ch := range p.chunks {
			for _, v := range ch.cols {
				n += v.StoredBytes()
			}
		}
	}
	return n
}
