package storage

import (
	"testing"

	"rapid/internal/coltypes"
)

func simpleTable(t *testing.T, rows int) *Table {
	t.Helper()
	s := MustSchema(
		ColumnDef{Name: "id", Type: coltypes.Int()},
		ColumnDef{Name: "val", Type: coltypes.Int()},
	)
	b := NewTableBuilder("t", s, BuildOptions{ChunkRows: 8})
	for i := 0; i < rows; i++ {
		if err := b.Append([]Value{IntValue(int64(i)), IntValue(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func scanCol(s *Snapshot, col int) []int64 {
	var out []int64
	for _, cv := range s.Chunks() {
		d := cv.Data(col)
		for r := 0; r < cv.Rows; r++ {
			if cv.Deleted != nil && cv.Deleted.Test(r) {
				continue
			}
			out = append(out, d.Get(r))
		}
	}
	return out
}

func TestSnapshotNoUpdates(t *testing.T) {
	tbl := simpleTable(t, 20)
	s := tbl.Snapshot(LatestSCN)
	vals := scanCol(s, 0)
	if len(vals) != 20 {
		t.Fatalf("rows = %d", len(vals))
	}
	if s.TotalRows() != 20 {
		t.Fatalf("TotalRows = %d", s.TotalRows())
	}
	if tbl.SCN() != 0 || tbl.BaseSCN() != 0 {
		t.Fatal("fresh table should be at SCN 0")
	}
}

func TestApplyInsertDeletePatch(t *testing.T) {
	tbl := simpleTable(t, 10)
	err := tbl.Tracker().Apply(UpdateUnit{
		SCN:     5,
		Inserts: [][]Value{{IntValue(100), IntValue(1000)}},
		Deletes: []RowRef{{Part: 0, Chunk: 0, Row: 3}},
		Patches: []CellPatch{{Ref: RowRef{Part: 0, Chunk: 0, Row: 1}, Col: 1, Val: IntValue(999)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.SCN() != 5 {
		t.Fatalf("SCN = %d", tbl.SCN())
	}
	s := tbl.Snapshot(LatestSCN)
	ids := scanCol(s, 0)
	if len(ids) != 10 { // 10 - 1 deleted + 1 inserted
		t.Fatalf("visible rows = %d: %v", len(ids), ids)
	}
	vals := scanCol(s, 1)
	// Row id=1 patched to 999; id=3 deleted; inserted row id=100 val=1000.
	found999, found1000, found3 := false, false, false
	for i, id := range ids {
		switch id {
		case 1:
			found999 = vals[i] == 999
		case 100:
			found1000 = vals[i] == 1000
		case 3:
			found3 = true
		}
	}
	if !found999 {
		t.Fatal("patch not visible")
	}
	if !found1000 {
		t.Fatal("insert not visible")
	}
	if found3 {
		t.Fatal("deleted row still visible")
	}
}

func TestSCNVersioning(t *testing.T) {
	tbl := simpleTable(t, 4)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 10, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 0}, Col: 1, Val: IntValue(111)},
	}}))
	must(tbl.Tracker().Apply(UpdateUnit{SCN: 20, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 0}, Col: 1, Val: IntValue(222)},
	}}))
	// Snapshot before the first change sees the original value.
	if v := scanCol(tbl.Snapshot(5), 1)[0]; v != 0 {
		t.Fatalf("SCN 5 sees %d, want 0", v)
	}
	// Snapshot between the changes sees the first patch only.
	if v := scanCol(tbl.Snapshot(15), 1)[0]; v != 111 {
		t.Fatalf("SCN 15 sees %d, want 111", v)
	}
	// Latest sees the second patch.
	if v := scanCol(tbl.Snapshot(LatestSCN), 1)[0]; v != 222 {
		t.Fatalf("latest sees %d, want 222", v)
	}
}

func TestApplyValidation(t *testing.T) {
	tbl := simpleTable(t, 4)
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 3,
		Deletes: []RowRef{{Part: 9, Chunk: 0, Row: 0}}}); err == nil {
		t.Fatal("bad partition should fail")
	}
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 3,
		Deletes: []RowRef{{Part: 0, Chunk: 0, Row: 99}}}); err == nil {
		t.Fatal("bad row should fail")
	}
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 3,
		Inserts: [][]Value{{IntValue(1)}}}); err == nil {
		t.Fatal("short insert should fail")
	}
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 3}); err == nil {
		t.Fatal("non-monotonic SCN should fail")
	}
}

func TestPatchWidening(t *testing.T) {
	// Base column fits W1 (values 0..9); patch a huge value; the snapshot
	// must widen the patched copy rather than truncate.
	tbl := simpleTable(t, 10)
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 1, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 2}, Col: 0, Val: IntValue(1 << 40)},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := scanCol(tbl.Snapshot(LatestSCN), 0)
	found := false
	for _, v := range ids {
		if v == 1<<40 {
			found = true
		}
	}
	if !found {
		t.Fatalf("widened patch lost: %v", ids)
	}
}

func TestCompact(t *testing.T) {
	tbl := simpleTable(t, 20)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tbl.Tracker().Apply(UpdateUnit{
		SCN:     7,
		Inserts: [][]Value{{IntValue(500), IntValue(5000)}},
		Deletes: []RowRef{{0, 0, 0}, {0, 1, 2}},
		Patches: []CellPatch{{Ref: RowRef{0, 0, 5}, Col: 1, Val: IntValue(777)}},
	}))
	before := scanCol(tbl.Snapshot(LatestSCN), 0)
	beforeVals := scanCol(tbl.Snapshot(LatestSCN), 1)
	must(tbl.Compact())
	if tbl.Tracker().PendingUnits() != 0 {
		t.Fatal("compact should clear units")
	}
	if tbl.BaseSCN() != 7 {
		t.Fatalf("BaseSCN = %d", tbl.BaseSCN())
	}
	after := scanCol(tbl.Snapshot(LatestSCN), 0)
	afterVals := scanCol(tbl.Snapshot(LatestSCN), 1)
	if len(after) != len(before) {
		t.Fatalf("row count changed: %d -> %d", len(before), len(after))
	}
	// Same multiset of (id, val) pairs.
	pairs := func(ids, vals []int64) map[[2]int64]int {
		m := map[[2]int64]int{}
		for i := range ids {
			m[[2]int64{ids[i], vals[i]}]++
		}
		return m
	}
	bm, am := pairs(before, beforeVals), pairs(after, afterVals)
	if len(bm) != len(am) {
		t.Fatal("compact changed data")
	}
	for k, c := range bm {
		if am[k] != c {
			t.Fatalf("compact changed data at %v", k)
		}
	}
}

func TestVectorRefAccessThroughView(t *testing.T) {
	tbl := simpleTable(t, 10)
	s := tbl.Snapshot(LatestSCN)
	cv := s.Chunks()[0]
	if cv.Vector(0) == nil {
		t.Fatal("unpatched base chunk should expose vectors")
	}
	if err := tbl.Tracker().Apply(UpdateUnit{SCN: 1, Patches: []CellPatch{
		{Ref: RowRef{0, 0, 1}, Col: 0, Val: IntValue(3)},
	}}); err != nil {
		t.Fatal(err)
	}
	cv2 := tbl.Snapshot(LatestSCN).Chunks()[0]
	if cv2.Vector(0) != nil {
		t.Fatal("patched view must not expose base vectors")
	}
}
