package storage

import (
	"fmt"
	"time"

	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// Value is a logical cell value used at the load and result boundaries.
// Inside the engine everything is fixed-width integers; Values exist only
// where humans or the host database meet RAPID.
type Value struct {
	Kind coltypes.Kind
	Int  int64            // KindInt, KindDate (days since epoch), KindBool (0/1)
	Dec  encoding.Decimal // KindDecimal
	Str  string           // KindString
}

// IntValue builds an integer value.
func IntValue(v int64) Value { return Value{Kind: coltypes.KindInt, Int: v} }

// DecValue builds a decimal value.
func DecValue(d encoding.Decimal) Value { return Value{Kind: coltypes.KindDecimal, Dec: d} }

// DecString parses a decimal literal into a value; panics on bad input.
func DecString(s string) Value { return DecValue(encoding.MustParseDecimal(s)) }

// StrValue builds a string value.
func StrValue(s string) Value { return Value{Kind: coltypes.KindString, Str: s} }

// BoolValue builds a boolean value.
func BoolValue(b bool) Value {
	v := Value{Kind: coltypes.KindBool}
	if b {
		v.Int = 1
	}
	return v
}

// epoch is day zero of the DATE encoding.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateValue builds a date value from y/m/d.
func DateValue(y, m, d int) Value {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return Value{Kind: coltypes.KindDate, Int: int64(t.Sub(epoch).Hours() / 24)}
}

// ParseDate parses "YYYY-MM-DD" into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("storage: bad date %q: %w", s, err)
	}
	return Value{Kind: coltypes.KindDate, Int: int64(t.Sub(epoch).Hours() / 24)}, nil
}

// MustParseDate parses or panics.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// DateToString renders a day number as "YYYY-MM-DD".
func DateToString(days int64) string {
	return epoch.AddDate(0, 0, int(days)).Format("2006-01-02")
}

// DaysFromDate converts a parsed date value back to its day number.
func (v Value) Days() int64 { return v.Int }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case coltypes.KindInt:
		return fmt.Sprintf("%d", v.Int)
	case coltypes.KindDecimal:
		return v.Dec.String()
	case coltypes.KindDate:
		return DateToString(v.Int)
	case coltypes.KindString:
		return v.Str
	case coltypes.KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("Value(kind=%d)", v.Kind)
}

// Equal compares two values logically.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case coltypes.KindDecimal:
		return v.Dec.Cmp(o.Dec) == 0
	case coltypes.KindString:
		return v.Str == o.Str
	default:
		return v.Int == o.Int
	}
}
