package storage

import (
	"fmt"
	"sort"
)

// ShardPolicy selects how a table's rows are distributed over the nodes of
// a RAPID tray (paper §7.4 runs SF1000 sharded over 8 servers).
type ShardPolicy int

const (
	// Replicated stores a full copy of the table on every node. Right for
	// small dimension tables: joins against them never need an exchange.
	Replicated ShardPolicy = iota
	// HashSharded routes row r to node uint64(enc(key)) % Nodes.
	HashSharded
	// RangeSharded routes rows by comparing the encoded key against the
	// ascending split Bounds (len Nodes-1): node 0 gets keys <= Bounds[0],
	// node i gets Bounds[i-1] < key <= Bounds[i], the last node the rest.
	RangeSharded
)

func (p ShardPolicy) String() string {
	switch p {
	case Replicated:
		return "replicated"
	case HashSharded:
		return "hash"
	case RangeSharded:
		return "range"
	}
	return fmt.Sprintf("ShardPolicy(%d)", int(p))
}

// ShardMap describes how one logical table is split across tray nodes. The
// same map doubles as the partitioning function of exchange operators: a
// shuffle that re-partitions a relation "by hash on column k over N nodes"
// is exactly ShardMap{Policy: HashSharded, Key: k, Nodes: N}.
type ShardMap struct {
	Policy ShardPolicy
	// Key is the sharding column (encoded-value domain); unused when
	// Replicated.
	Key int
	// Nodes is the tray width the map was built for.
	Nodes int
	// Bounds are the RangeSharded split points (ascending, len Nodes-1).
	Bounds []int64
}

// Validate checks internal consistency.
func (m *ShardMap) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("storage: shard map needs Nodes >= 1, got %d", m.Nodes)
	}
	switch m.Policy {
	case Replicated:
		return nil
	case HashSharded:
		if m.Key < 0 {
			return fmt.Errorf("storage: hash shard map needs a key column")
		}
		return nil
	case RangeSharded:
		if m.Key < 0 {
			return fmt.Errorf("storage: range shard map needs a key column")
		}
		if len(m.Bounds) != m.Nodes-1 {
			return fmt.Errorf("storage: range shard map over %d nodes needs %d bounds, got %d",
				m.Nodes, m.Nodes-1, len(m.Bounds))
		}
		if !sort.SliceIsSorted(m.Bounds, func(i, j int) bool { return m.Bounds[i] < m.Bounds[j] }) {
			return fmt.Errorf("storage: range shard bounds must be strictly ascending")
		}
		for i := 1; i < len(m.Bounds); i++ {
			if m.Bounds[i] == m.Bounds[i-1] {
				return fmt.Errorf("storage: range shard bounds must be strictly ascending")
			}
		}
		return nil
	}
	return fmt.Errorf("storage: unknown shard policy %d", int(m.Policy))
}

// NodeFor returns the owning node of an encoded key value. For Replicated
// maps every node owns the row; NodeFor returns 0 (the canonical owner).
func (m *ShardMap) NodeFor(enc int64) int {
	switch m.Policy {
	case HashSharded:
		return int(uint64(enc) % uint64(m.Nodes))
	case RangeSharded:
		// First bound >= key wins; past the last bound -> last node.
		lo, hi := 0, len(m.Bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if enc <= m.Bounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	default:
		return 0
	}
}

// SameFunction reports whether two maps route equal key values to the same
// node, i.e. relations partitioned by them on their join keys are
// co-partitioned and the join needs no exchange.
func (m *ShardMap) SameFunction(o *ShardMap) bool {
	if m == nil || o == nil {
		return false
	}
	if m.Policy != o.Policy || m.Nodes != o.Nodes {
		return false
	}
	if m.Policy == RangeSharded {
		if len(m.Bounds) != len(o.Bounds) {
			return false
		}
		for i := range m.Bounds {
			if m.Bounds[i] != o.Bounds[i] {
				return false
			}
		}
	}
	return m.Policy == HashSharded || m.Policy == RangeSharded
}

// SetShardMap records the tray shard map this table is one shard of (set by
// the cluster loader on each node replica).
func (t *Table) SetShardMap(m *ShardMap) { t.shard = m }

// ShardMap returns the shard map recorded by SetShardMap, or nil for
// single-node tables.
func (t *Table) ShardMap() *ShardMap { return t.shard }
