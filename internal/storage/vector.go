package storage

import (
	"rapid/internal/coltypes"
	"rapid/internal/encoding"
)

// VectorSizeBytes is the sweet-spot vector size of the RAPID DPU: 16 KiB
// enables double buffering and DMS/compute overlap (paper §4.1).
const VectorSizeBytes = 16 * 1024

// DefaultChunkRows is the default number of rows per chunk: a 4-byte column
// vector of a chunk is then exactly the 16 KiB sweet spot.
const DefaultChunkRows = VectorSizeBytes / 4

// Vector is one column of one chunk: a flat fixed-width array, optionally
// held RLE-compressed, with a DSB exception table for values that do not fit
// the column's common scale (paper §4.2).
type Vector struct {
	flat       coltypes.Data
	rle        *encoding.RLE
	exceptions map[int]encoding.Decimal // row-in-chunk -> exact value
}

// NewVector wraps flat column data.
func NewVector(d coltypes.Data) *Vector { return &Vector{flat: d} }

// NewRLEVector wraps RLE-compressed data.
func NewRLEVector(r *encoding.RLE) *Vector { return &Vector{rle: r} }

// Len returns the row count.
func (v *Vector) Len() int {
	if v.rle != nil {
		return v.rle.Len()
	}
	return v.flat.Len()
}

// Width returns the physical element width.
func (v *Vector) Width() coltypes.Width {
	if v.rle != nil {
		return v.rle.Width
	}
	return v.flat.Width()
}

// Compressed reports whether the vector is stored RLE.
func (v *Vector) Compressed() bool { return v.rle != nil }

// Data returns the decoded flat data. For RLE vectors this decodes into a
// fresh buffer each call (scans decode into DMEM on the DPU).
func (v *Vector) Data() coltypes.Data {
	if v.rle != nil {
		return v.rle.Decode()
	}
	return v.flat
}

// SetExceptions installs the DSB exception table.
func (v *Vector) SetExceptions(ex map[int]encoding.Decimal) { v.exceptions = ex }

// Exception returns the exact decimal for a row, if the row is an exception.
func (v *Vector) Exception(row int) (encoding.Decimal, bool) {
	d, ok := v.exceptions[row]
	return d, ok
}

// HasExceptions reports whether the vector carries any exception values.
func (v *Vector) HasExceptions() bool { return len(v.exceptions) > 0 }

// StoredBytes returns the storage footprint of the vector.
func (v *Vector) StoredBytes() int {
	if v.rle != nil {
		return v.rle.SizeBytes()
	}
	return v.flat.SizeBytes()
}

// Zone is one column's zone-map entry for one chunk (tile): the inclusive
// encoded min/max over the tile's rows plus the row count. Zones are computed
// over the same encoded values predicates evaluate against, so a zone check
// agrees with predicate evaluation by construction (DSB exception values are
// approximated identically on both paths).
type Zone struct {
	Min, Max int64
	Rows     int
}

// Contains reports whether v lies inside the zone's encoded range.
func (z Zone) Contains(v int64) bool { return v >= z.Min && v <= z.Max }

// Chunk is a horizontal slice of a partition: one Vector per table column,
// with a per-column zone map computed at build time.
type Chunk struct {
	rows  int
	cols  []*Vector
	zones []Zone
}

// NewChunk builds a chunk from per-column vectors, all of the same length,
// computing the per-column zone maps in the same pass.
func NewChunk(cols []*Vector) *Chunk {
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
		for i, c := range cols {
			if c.Len() != rows {
				panic("storage: ragged chunk")
			}
			_ = i
		}
	}
	zones := make([]Zone, len(cols))
	for i, c := range cols {
		z := Zone{Rows: rows}
		if rows > 0 {
			d := c.Data()
			z.Min, z.Max = d.Get(0), d.Get(0)
			for r := 1; r < rows; r++ {
				v := d.Get(r)
				if v < z.Min {
					z.Min = v
				}
				if v > z.Max {
					z.Max = v
				}
			}
		}
		zones[i] = z
	}
	return &Chunk{rows: rows, cols: cols, zones: zones}
}

// Zone returns the zone-map entry of column col; ok is false for empty
// chunks, whose zones carry no information.
func (c *Chunk) Zone(col int) (Zone, bool) {
	if c.rows == 0 || col < 0 || col >= len(c.zones) {
		return Zone{}, false
	}
	return c.zones[col], true
}

// Rows returns the chunk row count.
func (c *Chunk) Rows() int { return c.rows }

// NumCols returns the column count.
func (c *Chunk) NumCols() int { return len(c.cols) }

// Col returns column i of the chunk.
func (c *Chunk) Col(i int) *Vector { return c.cols[i] }

// Partition is a horizontal partition of a table: an ordered list of chunks.
type Partition struct {
	chunks []*Chunk
}

// NumChunks returns the chunk count.
func (p *Partition) NumChunks() int { return len(p.chunks) }

// Chunk returns chunk i.
func (p *Partition) Chunk(i int) *Chunk { return p.chunks[i] }

// Rows returns the partition row count.
func (p *Partition) Rows() int {
	n := 0
	for _, c := range p.chunks {
		n += c.rows
	}
	return n
}

// AppendChunk adds a chunk to the partition.
func (p *Partition) AppendChunk(c *Chunk) { p.chunks = append(p.chunks, c) }
