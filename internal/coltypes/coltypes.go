// Package coltypes defines RAPID's logical column types and the fixed-width
// physical storage all of them compile to.
//
// The DPU has no floating point and strict alignment rules (paper §4.2), so
// RAPID stores every type as 1/2/4/8-byte integers after encoding: decimals
// as decimal-scaled binary (DSB), dates as day numbers, strings as dictionary
// codes. This package holds the type descriptors and the typed flat arrays;
// the encodings themselves live in internal/encoding.
package coltypes

import "fmt"

// Width is the physical element width in bytes.
type Width int8

// Physical widths supported by the storage layer.
const (
	W1 Width = 1
	W2 Width = 2
	W4 Width = 4
	W8 Width = 8
)

// Valid reports whether w is a supported physical width.
func (w Width) Valid() bool { return w == W1 || w == W2 || w == W4 || w == W8 }

// Bytes returns the width in bytes as an int.
func (w Width) Bytes() int { return int(w) }

// MinInt returns the smallest representable value at this width.
func (w Width) MinInt() int64 {
	return -(int64(1) << (uint(w)*8 - 1))
}

// MaxInt returns the largest representable value at this width.
func (w Width) MaxInt() int64 {
	return int64(1)<<(uint(w)*8-1) - 1
}

// WidthFor returns the narrowest width able to hold every value in
// [lo, hi].
func WidthFor(lo, hi int64) Width {
	for _, w := range []Width{W1, W2, W4, W8} {
		if lo >= w.MinInt() && hi <= w.MaxInt() {
			return w
		}
	}
	return W8
}

// Kind is the logical column kind.
type Kind uint8

const (
	KindInt     Kind = iota // 64-bit integer
	KindDecimal             // fixed-point decimal, DSB encoded with Scale
	KindDate                // days since 1970-01-01
	KindString              // dictionary encoded
	KindBool                // 0/1
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindDecimal:
		return "DECIMAL"
	case KindDate:
		return "DATE"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Type is a logical column type descriptor.
type Type struct {
	Kind  Kind
	Scale int8 // decimal digits after the point (KindDecimal only)
}

// Common type constructors.
func Int() Type               { return Type{Kind: KindInt} }
func Decimal(scale int8) Type { return Type{Kind: KindDecimal, Scale: scale} }
func Date() Type              { return Type{Kind: KindDate} }
func String() Type            { return Type{Kind: KindString} }
func Bool() Type              { return Type{Kind: KindBool} }

func (t Type) String() string {
	if t.Kind == KindDecimal {
		return fmt.Sprintf("DECIMAL(s=%d)", t.Scale)
	}
	return t.Kind.String()
}

// Numeric reports whether values of the type support arithmetic.
func (t Type) Numeric() bool {
	return t.Kind == KindInt || t.Kind == KindDecimal
}
