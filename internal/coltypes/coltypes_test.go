package coltypes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthBounds(t *testing.T) {
	cases := []struct {
		w        Width
		min, max int64
	}{
		{W1, -128, 127},
		{W2, -32768, 32767},
		{W4, -2147483648, 2147483647},
		{W8, -9223372036854775808, 9223372036854775807},
	}
	for _, c := range cases {
		if c.w.MinInt() != c.min || c.w.MaxInt() != c.max {
			t.Errorf("width %d: bounds [%d,%d], want [%d,%d]",
				c.w, c.w.MinInt(), c.w.MaxInt(), c.min, c.max)
		}
		if !c.w.Valid() {
			t.Errorf("width %d should be valid", c.w)
		}
	}
	if Width(3).Valid() {
		t.Error("width 3 should be invalid")
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		lo, hi int64
		want   Width
	}{
		{0, 100, W1},
		{-128, 127, W1},
		{0, 128, W2},
		{-129, 0, W2},
		{0, 1 << 20, W4},
		{0, 1 << 40, W8},
		{-(1 << 33), 0, W8},
	}
	for _, c := range cases {
		if got := WidthFor(c.lo, c.hi); got != c.want {
			t.Errorf("WidthFor(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if Int().String() != "INT" || Date().String() != "DATE" ||
		String().String() != "STRING" || Bool().String() != "BOOL" {
		t.Fatal("type names wrong")
	}
	if Decimal(2).String() != "DECIMAL(s=2)" {
		t.Fatalf("decimal name: %s", Decimal(2).String())
	}
	if !Int().Numeric() || !Decimal(2).Numeric() || Date().Numeric() || String().Numeric() {
		t.Fatal("Numeric classification wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestDataRoundTripAllWidths(t *testing.T) {
	for _, w := range []Width{W1, W2, W4, W8} {
		d := New(w, 10)
		if d.Len() != 10 || d.Width() != w {
			t.Fatalf("width %d: Len/Width wrong", w)
		}
		// Store boundary values; they must survive exactly.
		vals := []int64{0, 1, -1, w.MinInt(), w.MaxInt()}
		for i, v := range vals {
			d.Set(i, v)
		}
		for i, v := range vals {
			if got := d.Get(i); got != v {
				t.Fatalf("width %d: Get(%d) = %d, want %d", w, i, got, v)
			}
		}
		if d.SizeBytes() != 10*w.Bytes() {
			t.Fatalf("width %d: SizeBytes = %d", w, d.SizeBytes())
		}
		s := d.Slice(1, 4)
		if s.Len() != 3 || s.Get(0) != vals[1] {
			t.Fatalf("width %d: Slice wrong", w)
		}
		fresh := d.NewSame(5)
		if fresh.Len() != 5 || fresh.Width() != w || fresh.Get(0) != 0 {
			t.Fatalf("width %d: NewSame wrong", w)
		}
	}
}

func TestSetTruncates(t *testing.T) {
	d := New(W1, 1)
	d.Set(0, 300) // 300 mod 256 = 44
	if d.Get(0) != 44 {
		t.Fatalf("truncation: got %d", d.Get(0))
	}
}

func TestFromToInt64s(t *testing.T) {
	vals := []int64{5, -3, 127, 0}
	d := FromInt64s(W2, vals)
	got := ToInt64s(d)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("round trip [%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestCopyFrom(t *testing.T) {
	for _, w := range []Width{W1, W2, W4, W8} {
		src := FromInt64s(w, []int64{1, 2, 3})
		dst := New(w, 5)
		dst.CopyFrom(2, src)
		want := []int64{0, 0, 1, 2, 3}
		for i, v := range want {
			if dst.Get(i) != v {
				t.Fatalf("width %d: CopyFrom[%d] = %d, want %d", w, i, dst.Get(i), v)
			}
		}
	}
}

func TestGatherScatterAllWidths(t *testing.T) {
	for _, w := range []Width{W1, W2, W4, W8} {
		src := FromInt64s(w, []int64{10, 20, 30, 40, 50})
		rids := []uint32{4, 0, 2}
		dst := New(w, 3)
		Gather(dst, src, rids)
		want := []int64{50, 10, 30}
		for i, v := range want {
			if dst.Get(i) != v {
				t.Fatalf("width %d: Gather[%d] = %d, want %d", w, i, dst.Get(i), v)
			}
		}
		back := New(w, 5)
		Scatter(back, dst, rids)
		if back.Get(4) != 50 || back.Get(0) != 10 || back.Get(2) != 30 || back.Get(1) != 0 {
			t.Fatalf("width %d: Scatter wrong: %v", w, ToInt64s(back))
		}
	}
}

// Property: Gather(Scatter(x)) over a permutation is the identity.
func TestGatherScatterPermutationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		rids := make([]uint32, n)
		for i, p := range perm {
			rids[i] = uint32(p)
		}
		src := New(W4, n)
		for i := 0; i < n; i++ {
			src.Set(i, int64(rng.Int31()))
		}
		scattered := New(W4, n)
		Scatter(scattered, src, rids)
		gathered := New(W4, n)
		Gather(gathered, scattered, rids)
		for i := 0; i < n; i++ {
			if gathered.Get(i) != src.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Width(3), 1)
}
