package coltypes

import "fmt"

// Elem constrains the physical element types of column storage.
type Elem interface {
	~int8 | ~int16 | ~int32 | ~int64
}

// Data is the physical storage of one column vector: a flat array of
// fixed-width integers. The interface exists for width-generic plumbing
// (operators, DMS, storage); performance-critical primitives type-switch to
// the concrete slice types and run width-specialized kernels, mirroring the
// paper's generated type-specialized primitives.
type Data interface {
	// Len returns the number of elements.
	Len() int
	// Width returns the physical element width.
	Width() Width
	// Get returns element i sign-extended to 64 bits.
	Get(i int) int64
	// Set stores v into element i, truncating to the physical width.
	Set(i int, v int64)
	// Slice returns a view of elements [lo, hi).
	Slice(lo, hi int) Data
	// NewSame returns a fresh zeroed Data of the same width with n elements.
	NewSame(n int) Data
	// CopyFrom copies src (same width) into this Data starting at dstOff.
	CopyFrom(dstOff int, src Data)
	// SizeBytes returns the storage footprint.
	SizeBytes() int
}

// Typed slice storage. The named slice types implement Data.
type (
	I8  []int8
	I16 []int16
	I32 []int32
	I64 []int64
)

// New returns zeroed storage of the given width and length.
func New(w Width, n int) Data {
	switch w {
	case W1:
		return make(I8, n)
	case W2:
		return make(I16, n)
	case W4:
		return make(I32, n)
	case W8:
		return make(I64, n)
	}
	panic(fmt.Sprintf("coltypes: invalid width %d", w))
}

// FromInt64s builds storage of width w from 64-bit values (truncating).
func FromInt64s(w Width, vals []int64) Data {
	d := New(w, len(vals))
	for i, v := range vals {
		d.Set(i, v)
	}
	return d
}

// ToInt64s widens all elements of d into a new slice.
func ToInt64s(d Data) []int64 {
	out := make([]int64, d.Len())
	for i := range out {
		out[i] = d.Get(i)
	}
	return out
}

func (c I8) Len() int                   { return len(c) }
func (c I8) Width() Width               { return W1 }
func (c I8) Get(i int) int64            { return int64(c[i]) }
func (c I8) Set(i int, v int64)         { c[i] = int8(v) }
func (c I8) Slice(lo, hi int) Data      { return c[lo:hi] }
func (c I8) NewSame(n int) Data         { return make(I8, n) }
func (c I8) SizeBytes() int             { return len(c) }
func (c I8) CopyFrom(off int, src Data) { copy(c[off:], src.(I8)) }

func (c I16) Len() int                   { return len(c) }
func (c I16) Width() Width               { return W2 }
func (c I16) Get(i int) int64            { return int64(c[i]) }
func (c I16) Set(i int, v int64)         { c[i] = int16(v) }
func (c I16) Slice(lo, hi int) Data      { return c[lo:hi] }
func (c I16) NewSame(n int) Data         { return make(I16, n) }
func (c I16) SizeBytes() int             { return len(c) * 2 }
func (c I16) CopyFrom(off int, src Data) { copy(c[off:], src.(I16)) }

func (c I32) Len() int                   { return len(c) }
func (c I32) Width() Width               { return W4 }
func (c I32) Get(i int) int64            { return int64(c[i]) }
func (c I32) Set(i int, v int64)         { c[i] = int32(v) }
func (c I32) Slice(lo, hi int) Data      { return c[lo:hi] }
func (c I32) NewSame(n int) Data         { return make(I32, n) }
func (c I32) SizeBytes() int             { return len(c) * 4 }
func (c I32) CopyFrom(off int, src Data) { copy(c[off:], src.(I32)) }

func (c I64) Len() int                   { return len(c) }
func (c I64) Width() Width               { return W8 }
func (c I64) Get(i int) int64            { return c[i] }
func (c I64) Set(i int, v int64)         { c[i] = v }
func (c I64) Slice(lo, hi int) Data      { return c[lo:hi] }
func (c I64) NewSame(n int) Data         { return make(I64, n) }
func (c I64) SizeBytes() int             { return len(c) * 8 }
func (c I64) CopyFrom(off int, src Data) { copy(c[off:], src.(I64)) }

// Zero clears every element of d. Pooled buffers are recycled with Zero
// instead of being reallocated.
func Zero(d Data) {
	switch s := d.(type) {
	case I8:
		for i := range s {
			s[i] = 0
		}
	case I16:
		for i := range s {
			s[i] = 0
		}
	case I32:
		for i := range s {
			s[i] = 0
		}
	case I64:
		for i := range s {
			s[i] = 0
		}
	default:
		panic(fmt.Sprintf("coltypes: unsupported Data %T", d))
	}
}

// CopyRange copies src[lo:hi] into dst starting at dstOff. Equivalent to
// dst.CopyFrom(dstOff, src.Slice(lo, hi)) but without boxing the slice view
// into a fresh interface value — the DMS calls this once per column per
// tile, so the hot path must not allocate.
func CopyRange(dst Data, dstOff int, src Data, lo, hi int) {
	switch s := src.(type) {
	case I8:
		copy(dst.(I8)[dstOff:], s[lo:hi])
	case I16:
		copy(dst.(I16)[dstOff:], s[lo:hi])
	case I32:
		copy(dst.(I32)[dstOff:], s[lo:hi])
	case I64:
		copy(dst.(I64)[dstOff:], s[lo:hi])
	default:
		panic(fmt.Sprintf("coltypes: unsupported Data %T", src))
	}
}

// Gather copies src[rids[i]] into dst[i] for every i. dst and src must have
// the same width and dst.Len() >= len(rids). This is the software analogue
// of the DMS gather pattern; the DMS itself uses it when simulating
// descriptor execution.
func Gather(dst, src Data, rids []uint32) {
	switch s := src.(type) {
	case I8:
		d := dst.(I8)
		for i, r := range rids {
			d[i] = s[r]
		}
	case I16:
		d := dst.(I16)
		for i, r := range rids {
			d[i] = s[r]
		}
	case I32:
		d := dst.(I32)
		for i, r := range rids {
			d[i] = s[r]
		}
	case I64:
		d := dst.(I64)
		for i, r := range rids {
			d[i] = s[r]
		}
	default:
		panic(fmt.Sprintf("coltypes: unsupported Data %T", src))
	}
}

// Scatter copies src[i] into dst[rids[i]] for every i.
func Scatter(dst, src Data, rids []uint32) {
	switch s := src.(type) {
	case I8:
		d := dst.(I8)
		for i, r := range rids {
			d[r] = s[i]
		}
	case I16:
		d := dst.(I16)
		for i, r := range rids {
			d[r] = s[i]
		}
	case I32:
		d := dst.(I32)
		for i, r := range rids {
			d[r] = s[i]
		}
	case I64:
		d := dst.(I64)
		for i, r := range rids {
			d[r] = s[i]
		}
	default:
		panic(fmt.Sprintf("coltypes: unsupported Data %T", src))
	}
}
