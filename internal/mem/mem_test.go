package mem

import (
	"errors"
	"sync"
	"testing"
)

func TestDMEMCapacity(t *testing.T) {
	d := NewDMEM()
	if d.Capacity() != 32*1024 {
		t.Fatalf("Capacity = %d, want 32768", d.Capacity())
	}
	if err := d.Alloc(32 * 1024); err != nil {
		t.Fatalf("full alloc failed: %v", err)
	}
	err := d.Alloc(1)
	var ex *ErrDMEMExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("expected ErrDMEMExhausted, got %v", err)
	}
	if ex.Free != 0 {
		t.Fatalf("Free in error = %d", ex.Free)
	}
}

func TestDMEMAlignment(t *testing.T) {
	d := NewDMEMWithCapacity(64)
	if err := d.Alloc(1); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 8 {
		t.Fatalf("Used = %d, want 8 (aligned)", d.Used())
	}
	if err := d.Alloc(9); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 24 {
		t.Fatalf("Used = %d, want 24", d.Used())
	}
	if !d.Fits(40) || d.Fits(41) {
		t.Fatalf("Fits boundary wrong: free=%d", d.Free())
	}
}

func TestDMEMMarkRelease(t *testing.T) {
	d := NewDMEMWithCapacity(1024)
	d.MustAlloc(100)
	d.Mark()
	d.MustAlloc(200)
	d.Mark()
	d.MustAlloc(300)
	d.Release()
	if d.Used() != align(100)+align(200) {
		t.Fatalf("Used after inner Release = %d", d.Used())
	}
	d.Release()
	if d.Used() != align(100) {
		t.Fatalf("Used after outer Release = %d", d.Used())
	}
	mustPanicMem(t, func() { d.Release() })
	d.Reset()
	if d.Used() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestDMEMTypedAlloc(t *testing.T) {
	d := NewDMEMWithCapacity(100)
	s, err := AllocDMEM[int32](d, 10)
	if err != nil || len(s) != 10 {
		t.Fatalf("AllocDMEM int32: %v len=%d", err, len(s))
	}
	if d.Used() != 40 {
		t.Fatalf("Used = %d, want 40", d.Used())
	}
	if _, err := AllocDMEM[int64](d, 10); err == nil {
		t.Fatal("expected exhaustion for 80 bytes in 60 free")
	}
	b, err := d.TryAllocBytes(16)
	if err != nil || len(b) != 16 {
		t.Fatalf("TryAllocBytes: %v", err)
	}
}

func TestDMEMPanics(t *testing.T) {
	mustPanicMem(t, func() { NewDMEMWithCapacity(-1) })
	d := NewDMEM()
	mustPanicMem(t, func() { d.Alloc(-5) })
	small := NewDMEMWithCapacity(8)
	mustPanicMem(t, func() { small.MustAlloc(16) })
}

func TestDRAMAccounting(t *testing.T) {
	m := NewDRAM()
	m.Alloc(1000)
	m.Alloc(500)
	if m.Allocated() != 1500 || m.Peak() != 1500 {
		t.Fatalf("Allocated/Peak = %d/%d", m.Allocated(), m.Peak())
	}
	m.Free(1200)
	m.Alloc(100)
	if m.Allocated() != 400 {
		t.Fatalf("Allocated = %d", m.Allocated())
	}
	if m.Peak() != 1500 {
		t.Fatalf("Peak = %d, want 1500", m.Peak())
	}
	m.AddTraffic(4096)
	m.AddTraffic(4096)
	if m.Traffic() != 8192 {
		t.Fatalf("Traffic = %d", m.Traffic())
	}
	m.ResetTraffic()
	if m.Traffic() != 0 {
		t.Fatal("ResetTraffic failed")
	}
}

func TestDRAMConcurrent(t *testing.T) {
	m := NewDRAM()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Alloc(16)
				m.AddTraffic(16)
				m.Free(16)
			}
		}()
	}
	wg.Wait()
	if m.Allocated() != 0 {
		t.Fatalf("Allocated = %d, want 0", m.Allocated())
	}
	if m.Traffic() != 8*1000*16 {
		t.Fatalf("Traffic = %d", m.Traffic())
	}
	if m.Peak() < 16 {
		t.Fatalf("Peak = %d", m.Peak())
	}
}

func mustPanicMem(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
