// Package mem models the RAPID DPU memory hierarchy that the software can
// see: the per-dpCore 32 KiB DMEM scratchpad (paper §2.2) and the shared
// DRAM. Go has no scratchpads, so DMEM here is an *accounted* region: buffers
// allocated from a DMEM arena are ordinary Go slices, but allocation is
// bounds-checked against the 32 KiB capacity. That capacity check is what
// drives task formation, join partitioning depth and the hash-table overflow
// path, exactly as on hardware.
package mem

import (
	"fmt"
)

// DMEMSize is the scratchpad capacity of one dpCore: 32 KiB.
const DMEMSize = 32 * 1024

// Alignment is the DMS transfer alignment in bytes. The DPU has strict
// alignment rules for memory addressing (paper §4.2); we align every DMEM
// allocation to 8 bytes.
const Alignment = 8

// ErrDMEMExhausted is returned when an allocation does not fit in the
// remaining DMEM space. Operators use it to trigger graceful overflow to
// DRAM (paper §6.4) and the compiler uses capacity checks to size tasks.
type ErrDMEMExhausted struct {
	Requested int
	Free      int
}

func (e *ErrDMEMExhausted) Error() string {
	return fmt.Sprintf("mem: DMEM exhausted: requested %d bytes, %d free", e.Requested, e.Free)
}

// DMEM is a bump allocator over a single dpCore's scratchpad. It is not safe
// for concurrent use: each dpCore owns exactly one DMEM, and the actor model
// guarantees single-threaded access per core.
type DMEM struct {
	capacity int
	used     int
	high     int   // max used since creation; survives Reset (observability)
	marks    []int // stack of Mark offsets for scoped release
}

// NewDMEM returns a DMEM allocator with the standard 32 KiB capacity.
func NewDMEM() *DMEM { return NewDMEMWithCapacity(DMEMSize) }

// NewDMEMWithCapacity returns a DMEM allocator with a custom capacity.
// Tests and the DMEM-pressure failure-injection experiments shrink it to
// force the overflow paths.
func NewDMEMWithCapacity(capacity int) *DMEM {
	if capacity < 0 {
		panic("mem: negative DMEM capacity")
	}
	return &DMEM{capacity: capacity}
}

func align(n int) int { return (n + Alignment - 1) &^ (Alignment - 1) }

// Alloc reserves n bytes and returns an error if they do not fit.
func (d *DMEM) Alloc(n int) error {
	if n < 0 {
		panic("mem: negative allocation")
	}
	n = align(n)
	if d.used+n > d.capacity {
		return &ErrDMEMExhausted{Requested: n, Free: d.capacity - d.used}
	}
	d.used += n
	if d.used > d.high {
		d.high = d.used
	}
	return nil
}

// MustAlloc reserves n bytes and panics on exhaustion. Used by code paths
// the compiler has already proven to fit.
func (d *DMEM) MustAlloc(n int) {
	if err := d.Alloc(n); err != nil {
		panic(err)
	}
}

// TryAllocBytes reserves and returns an n-byte buffer, or an error when the
// scratchpad cannot hold it.
func (d *DMEM) TryAllocBytes(n int) ([]byte, error) {
	if err := d.Alloc(n); err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// Capacity returns the total scratchpad size.
func (d *DMEM) Capacity() int { return d.capacity }

// Used returns the currently reserved byte count.
func (d *DMEM) Used() int { return d.used }

// HighWater returns the maximum reserved byte count since creation. Unlike
// Used it survives Reset (tasks reset DMEM between work units), so a query
// that owns the core can read its true scratchpad footprint afterwards.
func (d *DMEM) HighWater() int { return d.high }

// Free returns the available byte count.
func (d *DMEM) Free() int { return d.capacity - d.used }

// Fits reports whether an allocation of n bytes would succeed.
func (d *DMEM) Fits(n int) bool { return d.used+align(n) <= d.capacity }

// Mark pushes the current allocation offset. Paired with Release it gives
// operators scoped scratch space (a task resets DMEM between partitions).
func (d *DMEM) Mark() { d.marks = append(d.marks, d.used) }

// Release pops the most recent Mark, freeing everything allocated since.
func (d *DMEM) Release() {
	if len(d.marks) == 0 {
		panic("mem: Release without Mark")
	}
	d.used = d.marks[len(d.marks)-1]
	d.marks = d.marks[:len(d.marks)-1]
}

// Reset frees all allocations and marks.
func (d *DMEM) Reset() {
	d.used = 0
	d.marks = d.marks[:0]
}

// AllocDMEM reserves space for a []T of length n in d and returns the slice.
// It is the typed convenience used by operators for vector buffers.
func AllocDMEM[T any](d *DMEM, n int) ([]T, error) {
	var zero T
	size := n * int(sizeOf(zero))
	if err := d.Alloc(size); err != nil {
		return nil, err
	}
	return make([]T, n), nil
}

func sizeOf(v any) uintptr {
	switch v.(type) {
	case int8, uint8, bool:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int64, uint64, float64, int, uint:
		return 8
	default:
		panic(fmt.Sprintf("mem: unsupported DMEM element type %T", v))
	}
}
