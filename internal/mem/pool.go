package mem

import (
	"rapid/internal/bits"
	"rapid/internal/coltypes"
)

// TilePool is the per-core pool of reusable host buffers backing the QEF
// scratch API. On the DPU every operator runs out of the 32 KiB DMEM
// scratchpad and never allocates mid-query; the Go engine mirrors that
// discipline by serving all tile-lifetime buffers (expression accumulators,
// bit-vectors, RID lists, gathered column vectors) from this pool instead of
// the Go heap, so the steady-state tile loop is allocation-free.
//
// Lifetime model, mirroring DMEM's Mark/Release scoping:
//
//   - Reset frees everything — called by the QEF at work-unit boundaries.
//   - Mark/Release give task sources a scope for unit-lifetime buffers
//     (e.g. the accessor's double buffers, which live across tiles).
//   - ResetTile rolls back to the innermost Mark (or to empty when none is
//     active) — called by task sources at every tile boundary, recycling all
//     tile-lifetime buffers without touching unit-lifetime ones.
//
// Buffers handed out are invalidated by the Release/ResetTile/Reset that
// covers them; holding one past that point aliases a future take. The pool
// is not safe for concurrent use: like DMEM, each core owns exactly one.
//
// DataBytesInUse/HighWater track the bytes of data buffers outstanding
// (slice headers and Tile structs are excluded); the DMEMSize conformance
// tests compare the per-tile high-water mark against each operator's
// declared budget, making the declarations load-bearing.
type TilePool struct {
	i8   poolArena[int8]
	i16  poolArena[int16]
	i32  poolArena[int32]
	i64  poolArena[int64]
	u32  poolArena[uint32]
	hdrs poolArena[coltypes.Data]
	rows poolArena[[]int64]

	bv bvArena

	// dbuf caches boxed coltypes.Data buffers per width (index = log2 of
	// the width), so full-tile takes reuse the same interface value without
	// re-boxing.
	dbuf [4]dataArena

	marks []poolMark

	dataBytes int // data-buffer bytes currently taken
	highWater int
	grows     int64
}

// NewTilePool returns an empty pool.
func NewTilePool() *TilePool { return &TilePool{} }

// minArenaElems is the smallest backing array a typed arena allocates, in
// elements. Matches the old I64Scratch minimum of 16 K elements scaled down
// per width so transient growth stops after the first tiles.
const minArenaElems = 1 << 12

// poolArena is a typed bump arena. Growth abandons the old backing array
// (outstanding slices stay valid against it) and continues bumping in a
// larger one, so offsets recorded in marks remain meaningful.
type poolArena[T any] struct {
	buf []T
	off int
}

func take[T any](p *TilePool, a *poolArena[T], n int) []T {
	if a.off+n > len(a.buf) {
		grow := 2 * (a.off + n)
		if grow < minArenaElems {
			grow = minArenaElems
		}
		a.buf = make([]T, grow)
		p.grows++
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// bvArena recycles bit-vectors by position: the k-th take of a scope reuses
// the k-th vector of the previous scope via Vector.Reuse.
type bvArena struct {
	vecs []*bits.Vector
	idx  int
}

// dataArena recycles boxed coltypes.Data buffers by position. A take whose
// length matches the cached buffer reuses the interface value outright (zero
// allocations); shorter takes re-slice the cached backing (one interface
// header); longer takes grow the slot.
type dataArena struct {
	slabs []coltypes.Data
	idx   int
}

type poolMark struct {
	i8, i16, i32, i64, u32, hdrs, rows int
	bv                                 int
	dbuf                               [4]int
	dataBytes                          int
}

func (p *TilePool) snapshot() poolMark {
	return poolMark{
		i8: p.i8.off, i16: p.i16.off, i32: p.i32.off, i64: p.i64.off,
		u32: p.u32.off, hdrs: p.hdrs.off, rows: p.rows.off,
		bv:        p.bv.idx,
		dbuf:      [4]int{p.dbuf[0].idx, p.dbuf[1].idx, p.dbuf[2].idx, p.dbuf[3].idx},
		dataBytes: p.dataBytes,
	}
}

func (p *TilePool) restore(m poolMark) {
	p.i8.off, p.i16.off, p.i32.off, p.i64.off = m.i8, m.i16, m.i32, m.i64
	p.u32.off, p.hdrs.off, p.rows.off = m.u32, m.hdrs, m.rows
	p.bv.idx = m.bv
	for i := range p.dbuf {
		p.dbuf[i].idx = m.dbuf[i]
	}
	p.dataBytes = m.dataBytes
}

// Mark opens a scope; buffers taken after it are freed by the matching
// Release. Task sources bracket their unit-lifetime buffers with Mark so
// ResetTile (which rolls back to the innermost open Mark) spares them.
func (p *TilePool) Mark() { p.marks = append(p.marks, p.snapshot()) }

// Release closes the innermost Mark scope.
func (p *TilePool) Release() {
	if len(p.marks) == 0 {
		panic("mem: TilePool Release without Mark")
	}
	p.restore(p.marks[len(p.marks)-1])
	p.marks = p.marks[:len(p.marks)-1]
}

// ResetTile recycles all tile-lifetime buffers: everything taken since the
// innermost Mark (or since Reset when no Mark is open).
func (p *TilePool) ResetTile() {
	if len(p.marks) > 0 {
		p.restore(p.marks[len(p.marks)-1])
		return
	}
	p.restore(poolMark{})
}

// Reset frees everything, including open Mark scopes. Called by the QEF at
// work-unit boundaries (the analogue of DMEM.Reset).
func (p *TilePool) Reset() {
	p.restore(poolMark{})
	p.marks = p.marks[:0]
}

func (p *TilePool) noteData(bytes int) {
	p.dataBytes += bytes
	if p.dataBytes > p.highWater {
		p.highWater = p.dataBytes
	}
}

// I8 returns a zeroed tile-lifetime []int8 of length n.
func (p *TilePool) I8(n int) []int8 { p.noteData(n); return take(p, &p.i8, n) }

// I16 returns a zeroed tile-lifetime []int16 of length n.
func (p *TilePool) I16(n int) []int16 { p.noteData(2 * n); return take(p, &p.i16, n) }

// I32 returns a zeroed tile-lifetime []int32 of length n.
func (p *TilePool) I32(n int) []int32 { p.noteData(4 * n); return take(p, &p.i32, n) }

// I64 returns a zeroed tile-lifetime []int64 of length n.
func (p *TilePool) I64(n int) []int64 { p.noteData(8 * n); return take(p, &p.i64, n) }

// U32 returns a zeroed tile-lifetime []uint32 of length n (RID lists, group
// ids, hash values).
func (p *TilePool) U32(n int) []uint32 { p.noteData(4 * n); return take(p, &p.u32, n) }

// Headers returns a zeroed []coltypes.Data header slice of length n. Header
// bytes are not counted against the DMEM-correspondence usage.
func (p *TilePool) Headers(n int) []coltypes.Data { return take(p, &p.hdrs, n) }

// RowHeaders returns a zeroed [][]int64 header slice of length n.
func (p *TilePool) RowHeaders(n int) [][]int64 { return take(p, &p.rows, n) }

// BV returns a cleared n-bit vector.
func (p *TilePool) BV(n int) *bits.Vector {
	a := &p.bv
	if a.idx == len(a.vecs) {
		a.vecs = append(a.vecs, bits.NewVector(n))
		p.grows++
	}
	v := a.vecs[a.idx]
	a.idx++
	v.Reuse(n)
	p.noteData(v.SizeBytes())
	return v
}

// Data returns a zeroed coltypes.Data buffer of the given width and length.
// Steady-state takes of a stable length reuse the cached boxed value with no
// heap allocation; shorter takes cost one interface-header allocation.
func (p *TilePool) Data(w coltypes.Width, n int) coltypes.Data {
	var a *dataArena
	switch w {
	case coltypes.W1:
		a = &p.dbuf[0]
	case coltypes.W2:
		a = &p.dbuf[1]
	case coltypes.W4:
		a = &p.dbuf[2]
	default:
		a = &p.dbuf[3]
	}
	if a.idx == len(a.slabs) {
		a.slabs = append(a.slabs, nil)
	}
	d := a.slabs[a.idx]
	if d == nil || d.Len() < n || d.Width() != w {
		d = coltypes.New(w, n)
		a.slabs[a.idx] = d
		p.grows++
	}
	a.idx++
	p.noteData(n * w.Bytes())
	if d.Len() == n {
		coltypes.Zero(d)
		return d
	}
	v := d.Slice(0, n)
	coltypes.Zero(v)
	return v
}

// DataBytesInUse returns the bytes of data buffers currently taken (headers
// excluded) — the pool-side analogue of DMEM.Used.
func (p *TilePool) DataBytesInUse() int { return p.dataBytes }

// HighWater returns the maximum DataBytesInUse observed since the last
// MarkHighWater.
func (p *TilePool) HighWater() int { return p.highWater }

// MarkHighWater restarts high-water tracking from the current usage. The
// DMEMSize conformance tests call it before driving one tile through an
// operator.
func (p *TilePool) MarkHighWater() { p.highWater = p.dataBytes }

// Grows returns the number of backing-array allocations the pool has
// performed. A steady-state tile loop must stop growing after the first few
// tiles; the QEF exports the delta as qef_pool_grows_total.
func (p *TilePool) Grows() int64 { return p.grows }

// RetainedBytes returns the bytes of backing storage the pool keeps alive
// for reuse (typed arenas, bit-vectors and boxed data slabs), independent of
// how much is currently taken. With pools owned by long-lived scheduler
// workers this is the cross-query memory footprint of pooling.
func (p *TilePool) RetainedBytes() int {
	total := len(p.i8.buf) + 2*len(p.i16.buf) + 4*len(p.i32.buf) +
		8*len(p.i64.buf) + 4*len(p.u32.buf)
	for _, v := range p.bv.vecs {
		total += v.SizeBytes()
	}
	for _, a := range p.dbuf {
		for _, d := range a.slabs {
			if d != nil {
				total += d.Len() * d.Width().Bytes()
			}
		}
	}
	return total
}

// TrimTo bounds the pool's retained storage: when RetainedBytes exceeds
// maxBytes the pool drops ALL backing arrays (arenas regrow lazily on the
// next take). Scheduler workers call it between work units after serving a
// memory-hungry query, so pooling survives across queries without one giant
// query pinning its arenas forever. The caller must guarantee no pool
// buffers are outstanding: TrimTo resets the pool outright.
func (p *TilePool) TrimTo(maxBytes int) {
	if p.RetainedBytes() <= maxBytes {
		return
	}
	*p = TilePool{grows: p.grows}
}
