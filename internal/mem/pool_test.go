package mem

import (
	"testing"

	"rapid/internal/coltypes"
)

func TestTilePoolTakeAndReset(t *testing.T) {
	p := NewTilePool()
	a := p.I64(100)
	if len(a) != 100 {
		t.Fatalf("len = %d, want 100", len(a))
	}
	for i := range a {
		a[i] = int64(i) + 1
	}
	b := p.I64(50)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("second take not zeroed at %d: %d", i, b[i])
		}
		b[i] = -7
	}
	if p.DataBytesInUse() != 8*150 {
		t.Fatalf("DataBytesInUse = %d, want %d", p.DataBytesInUse(), 8*150)
	}
	p.Reset()
	if p.DataBytesInUse() != 0 {
		t.Fatalf("DataBytesInUse after Reset = %d", p.DataBytesInUse())
	}
	// Recycled takes are zeroed even though the backing memory was dirty.
	c := p.I64(150)
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("recycled take not zeroed at %d: %d", i, c[i])
		}
	}
}

func TestTilePoolMarkReleaseResetTile(t *testing.T) {
	p := NewTilePool()
	unit := p.I64(10) // unit-lifetime take below the mark
	unit[0] = 42
	p.Mark()
	p.I64(20)
	p.U32(30)
	inner := p.DataBytesInUse()
	if inner != 8*10+8*20+4*30 {
		t.Fatalf("DataBytesInUse = %d", inner)
	}
	p.ResetTile() // rolls back to the mark, keeping the unit take
	if p.DataBytesInUse() != 8*10 {
		t.Fatalf("after ResetTile DataBytesInUse = %d, want %d", p.DataBytesInUse(), 8*10)
	}
	if unit[0] != 42 {
		t.Fatal("unit-lifetime buffer clobbered by ResetTile")
	}
	p.I64(5)
	p.Release() // closes the mark scope
	if p.DataBytesInUse() != 8*10 {
		t.Fatalf("after Release DataBytesInUse = %d, want %d", p.DataBytesInUse(), 8*10)
	}
	// Without marks, ResetTile behaves like Reset.
	p.ResetTile()
	if p.DataBytesInUse() != 0 {
		t.Fatalf("markless ResetTile DataBytesInUse = %d", p.DataBytesInUse())
	}
}

func TestTilePoolReleaseWithoutMarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Mark did not panic")
		}
	}()
	NewTilePool().Release()
}

func TestTilePoolSteadyStateNoGrows(t *testing.T) {
	p := NewTilePool()
	warm := func() {
		p.Reset()
		p.I64(256)
		p.I32(256)
		p.U32(256)
		p.BV(256)
		p.Data(coltypes.W4, 256)
		p.Data(coltypes.W8, 256)
		p.Headers(4)
		p.RowHeaders(4)
	}
	warm()
	base := p.Grows()
	for i := 0; i < 100; i++ {
		warm()
	}
	if g := p.Grows(); g != base {
		t.Fatalf("steady-state takes grew the pool: %d new grows", g-base)
	}
}

func TestTilePoolDataSlabReuse(t *testing.T) {
	p := NewTilePool()
	d := p.Data(coltypes.W8, 256)
	if d.Len() != 256 || d.Width() != coltypes.W8 {
		t.Fatalf("Data(W8, 256) = len %d width %d", d.Len(), d.Width())
	}
	d.Set(3, 99)
	p.Reset()
	d2 := p.Data(coltypes.W8, 256)
	if d2.Get(3) != 0 {
		t.Fatal("recycled Data slab not zeroed")
	}
	// Shorter takes re-slice the cached slab and stay zeroed.
	d3 := p.Data(coltypes.W8, 100)
	if d3.Len() != 100 {
		t.Fatalf("short take len = %d", d3.Len())
	}
	for i := 0; i < 100; i++ {
		if d3.Get(i) != 0 {
			t.Fatalf("short take not zeroed at %d", i)
		}
	}
}

func TestTilePoolHighWater(t *testing.T) {
	p := NewTilePool()
	p.I64(100)
	p.Reset()
	p.I64(10)
	if p.HighWater() != 800 {
		t.Fatalf("HighWater = %d, want 800", p.HighWater())
	}
	p.MarkHighWater()
	if p.HighWater() != 80 {
		t.Fatalf("HighWater after MarkHighWater = %d, want 80", p.HighWater())
	}
	p.I64(20)
	if p.HighWater() != 240 {
		t.Fatalf("HighWater = %d, want 240", p.HighWater())
	}
}

func TestTilePoolBVReuse(t *testing.T) {
	p := NewTilePool()
	v := p.BV(100)
	v.Set(7)
	v2 := p.BV(100)
	if v2 == v {
		t.Fatal("second BV take returned the same vector")
	}
	p.Reset()
	v3 := p.BV(200)
	if v3 != v {
		t.Fatal("recycled BV not reused")
	}
	if v3.Len() != 200 || v3.Count() != 0 {
		t.Fatalf("recycled BV len %d count %d", v3.Len(), v3.Count())
	}
}

func TestTilePoolRetainedBytesAndTrimTo(t *testing.T) {
	p := NewTilePool()
	if got := p.RetainedBytes(); got != 0 {
		t.Fatalf("fresh pool retains %d bytes, want 0", got)
	}
	p.I64(1024)   // 8 KiB arena
	p.I32(1024)   // 4 KiB arena
	p.BV(1 << 12) // bit-vector backing
	p.Reset()
	retained := p.RetainedBytes()
	if retained < 12*1024 {
		t.Fatalf("after takes, RetainedBytes = %d, want >= 12 KiB", retained)
	}

	// Under the bound: TrimTo must keep the arenas (pooling stays effective).
	p.TrimTo(retained)
	if got := p.RetainedBytes(); got != retained {
		t.Fatalf("TrimTo under bound dropped storage: %d -> %d", retained, got)
	}
	grows := p.Grows()
	p.I64(1024)
	if p.Grows() != grows {
		t.Fatalf("take after no-op TrimTo grew the pool: arenas were dropped")
	}
	p.Reset()

	// Over the bound: everything is dropped, but the grows counter survives
	// (it feeds a monotonic metric).
	p.TrimTo(retained - 1)
	if got := p.RetainedBytes(); got != 0 {
		t.Fatalf("TrimTo over bound retained %d bytes, want 0", got)
	}
	if p.Grows() != grows {
		t.Fatalf("TrimTo reset the grows counter: %d -> %d", grows, p.Grows())
	}

	// The trimmed pool must still be usable: arenas regrow lazily.
	if s := p.I64(16); len(s) != 16 {
		t.Fatalf("take after trim returned %d elems, want 16", len(s))
	}
	if p.Grows() == grows {
		t.Fatalf("take after trim should have regrown an arena")
	}
}
