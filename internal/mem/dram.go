package mem

import "sync/atomic"

// DRAM models the DPU-attached DDR3 memory as an accounted heap. Buffers are
// ordinary Go allocations; the arena tracks total bytes so experiments can
// report materialization volumes (the quantity the task-formation example of
// paper Fig. 4 minimizes) and so the DMS bandwidth model can bill transfers.
//
// DRAM is safe for concurrent use: all 32 dpCores and the DMS share it.
type DRAM struct {
	allocated atomic.Int64 // live bytes
	peak      atomic.Int64 // high-water mark
	traffic   atomic.Int64 // cumulative bytes moved to/from DRAM by the DMS
}

// NewDRAM returns an empty DRAM arena.
func NewDRAM() *DRAM { return &DRAM{} }

// Alloc records a DRAM allocation of n bytes.
func (m *DRAM) Alloc(n int) {
	now := m.allocated.Add(int64(n))
	for {
		p := m.peak.Load()
		if now <= p || m.peak.CompareAndSwap(p, now) {
			return
		}
	}
}

// Free records the release of n bytes.
func (m *DRAM) Free(n int) { m.allocated.Add(-int64(n)) }

// AddTraffic records n bytes of DMS transfer to or from DRAM.
func (m *DRAM) AddTraffic(n int) { m.traffic.Add(int64(n)) }

// Allocated returns the live byte count.
func (m *DRAM) Allocated() int64 { return m.allocated.Load() }

// Peak returns the high-water mark of live bytes.
func (m *DRAM) Peak() int64 { return m.peak.Load() }

// Traffic returns the cumulative DMS transfer volume in bytes.
func (m *DRAM) Traffic() int64 { return m.traffic.Load() }

// ResetTraffic zeroes the traffic counter (used between experiments).
func (m *DRAM) ResetTraffic() { m.traffic.Store(0) }
