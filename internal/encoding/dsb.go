// Package encoding implements RAPID's fixed-width column encodings (paper
// §4.2): decimal scaled binary (DSB) for numerics — the DPU has no floating
// point — dictionary encoding for strings, and run-length encoding as the
// lightweight compression applied on top.
package encoding

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxScale is the largest supported DSB scale (10^18 fits int64).
const MaxScale = 18

// Decimal is an exact fixed-point value: Unscaled * 10^-Scale.
type Decimal struct {
	Unscaled int64
	Scale    int8
}

// ParseDecimal parses strings like "123", "-4.50", ".25".
func ParseDecimal(s string) (Decimal, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Decimal{}, fmt.Errorf("encoding: empty decimal")
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		intPart, fracPart = s[:dot], s[dot+1:]
	}
	if intPart == "" && fracPart == "" {
		return Decimal{}, fmt.Errorf("encoding: malformed decimal %q", s)
	}
	fracPart = strings.TrimRight(fracPart, "0")
	if len(fracPart) > MaxScale {
		return Decimal{}, fmt.Errorf("encoding: scale %d exceeds max %d", len(fracPart), MaxScale)
	}
	digits := intPart + fracPart
	if digits == "" {
		digits = "0"
	}
	u, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return Decimal{}, fmt.Errorf("encoding: malformed decimal %q: %w", s, err)
	}
	if neg {
		u = -u
	}
	return Decimal{Unscaled: u, Scale: int8(len(fracPart))}, nil
}

// MustParseDecimal parses or panics; for literals in tests and examples.
func MustParseDecimal(s string) Decimal {
	d, err := ParseDecimal(s)
	if err != nil {
		panic(err)
	}
	return d
}

// String renders the decimal without losing digits.
func (d Decimal) String() string {
	if d.Scale == 0 {
		return strconv.FormatInt(d.Unscaled, 10)
	}
	neg := d.Unscaled < 0
	u := d.Unscaled
	if neg {
		u = -u
	}
	s := strconv.FormatInt(u, 10)
	for len(s) <= int(d.Scale) {
		s = "0" + s
	}
	cut := len(s) - int(d.Scale)
	out := s[:cut] + "." + s[cut:]
	if neg {
		out = "-" + out
	}
	return out
}

// Normalize returns the value with trailing zero digits removed from the
// fraction (minimal scale).
func (d Decimal) Normalize() Decimal {
	for d.Scale > 0 && d.Unscaled%10 == 0 {
		d.Unscaled /= 10
		d.Scale--
	}
	return d
}

// Cmp compares two decimals numerically: -1, 0 or +1.
func (d Decimal) Cmp(o Decimal) int {
	a, b := d.Normalize(), o.Normalize()
	// Bring to a common scale; overflow-safe via float fallback for the
	// extreme corner (never hit by normalized inputs within MaxScale).
	if a.Scale == b.Scale {
		switch {
		case a.Unscaled < b.Unscaled:
			return -1
		case a.Unscaled > b.Unscaled:
			return 1
		}
		return 0
	}
	target := a.Scale
	if b.Scale > target {
		target = b.Scale
	}
	av, aok := a.Rescale(target)
	bv, bok := b.Rescale(target)
	if aok && bok {
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	}
	af := float64(a.Unscaled) / float64(pow10[a.Scale])
	bf := float64(b.Unscaled) / float64(pow10[b.Scale])
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// pow10 table for rescaling.
var pow10 = func() [MaxScale + 1]int64 {
	var t [MaxScale + 1]int64
	t[0] = 1
	for i := 1; i <= MaxScale; i++ {
		t[i] = t[i-1] * 10
	}
	return t
}()

// Pow10 returns 10^n for n in [0, MaxScale].
func Pow10(n int) int64 {
	if n < 0 || n > MaxScale {
		panic(fmt.Sprintf("encoding: pow10(%d) out of range", n))
	}
	return pow10[n]
}

// Rescale returns the unscaled value of d at the target scale, and false if
// the rescale would overflow int64 or lose digits (an exception value in the
// paper's terms).
func (d Decimal) Rescale(target int8) (int64, bool) {
	switch {
	case target == d.Scale:
		return d.Unscaled, true
	case target > d.Scale:
		diff := int(target - d.Scale)
		if diff > MaxScale {
			return 0, false
		}
		f := pow10[diff]
		v := d.Unscaled * f
		if d.Unscaled != 0 && v/f != d.Unscaled {
			return 0, false // overflow
		}
		return v, true
	default:
		diff := int(d.Scale - target)
		if diff > MaxScale {
			return 0, false
		}
		f := pow10[diff]
		if d.Unscaled%f != 0 {
			return 0, false // would lose digits
		}
		return d.Unscaled / f, true
	}
}

// DSBVector is a DSB-encoded column vector: a common scale, the scaled
// binary values, and an exception table for the corner cases that cannot be
// represented at the common scale (paper §4.2).
type DSBVector struct {
	Scale      int8
	Values     []int64
	Exceptions map[int]Decimal // row -> exact value; Values[row] holds a best-effort approximation
}

// ChooseScale returns the minimum common scale that represents every value
// without a decimal point — exactly the paper's rule. Values whose scale
// exceeds MaxScale are left to the exception path.
func ChooseScale(vals []Decimal) int8 {
	var s int8
	for _, v := range vals {
		// Normalize: drop trailing zeros so 1.50 needs scale 1, not 2.
		vs := normalizeScale(v)
		if vs > s {
			s = vs
		}
	}
	return s
}

func normalizeScale(d Decimal) int8 {
	s, u := d.Scale, d.Unscaled
	for s > 0 && u%10 == 0 {
		u /= 10
		s--
	}
	return s
}

// EncodeDSB encodes vals at their minimal common scale.
func EncodeDSB(vals []Decimal) *DSBVector {
	scale := ChooseScale(vals)
	return EncodeDSBAt(vals, scale)
}

// EncodeDSBAt encodes vals at a fixed scale, routing unrepresentable values
// to the exception table.
func EncodeDSBAt(vals []Decimal, scale int8) *DSBVector {
	v := &DSBVector{Scale: scale, Values: make([]int64, len(vals))}
	for i, d := range vals {
		if u, ok := d.Rescale(scale); ok {
			v.Values[i] = u
			continue
		}
		if v.Exceptions == nil {
			v.Exceptions = make(map[int]Decimal)
		}
		v.Exceptions[i] = d
		// Best-effort truncated value so that scans without exception
		// handling still see something ordered correctly.
		if d.Scale > scale {
			v.Values[i] = d.Unscaled / pow10[int(d.Scale-scale)]
		}
	}
	return v
}

// Decode returns the exact decimal at row i.
func (v *DSBVector) Decode(i int) Decimal {
	if d, ok := v.Exceptions[i]; ok {
		return d
	}
	return Decimal{Unscaled: v.Values[i], Scale: v.Scale}
}

// Len returns the row count.
func (v *DSBVector) Len() int { return len(v.Values) }

// HasExceptions reports whether any row needed the exception path.
func (v *DSBVector) HasExceptions() bool { return len(v.Exceptions) > 0 }
