package encoding

import (
	"fmt"

	"rapid/internal/coltypes"
)

// RLE is the run-length layer of the per-column encoding stack (paper §4.2
// applies "a stack of encodings on each column vector for lightweight
// compression"). A vector compresses into (value, runLength) pairs; scans
// decode runs back into flat DMEM vectors.
type RLE struct {
	Width   coltypes.Width
	Values  []int64
	Lengths []int32
	n       int
}

// EncodeRLE compresses a column vector.
func EncodeRLE(d coltypes.Data) *RLE {
	r := &RLE{Width: d.Width(), n: d.Len()}
	n := d.Len()
	if n == 0 {
		return r
	}
	cur := d.Get(0)
	runLen := int32(1)
	for i := 1; i < n; i++ {
		v := d.Get(i)
		if v == cur {
			runLen++
			continue
		}
		r.Values = append(r.Values, cur)
		r.Lengths = append(r.Lengths, runLen)
		cur, runLen = v, 1
	}
	r.Values = append(r.Values, cur)
	r.Lengths = append(r.Lengths, runLen)
	return r
}

// Len returns the decoded row count.
func (r *RLE) Len() int { return r.n }

// Runs returns the number of runs.
func (r *RLE) Runs() int { return len(r.Values) }

// Decode expands the runs into a fresh flat vector.
func (r *RLE) Decode() coltypes.Data {
	d := coltypes.New(r.Width, r.n)
	i := 0
	for ri, v := range r.Values {
		for k := int32(0); k < r.Lengths[ri]; k++ {
			d.Set(i, v)
			i++
		}
	}
	if i != r.n {
		panic(fmt.Sprintf("encoding: RLE corrupt: decoded %d of %d rows", i, r.n))
	}
	return d
}

// SizeBytes returns the compressed footprint (values at column width plus
// 4-byte run lengths).
func (r *RLE) SizeBytes() int {
	return len(r.Values)*r.Width.Bytes() + len(r.Lengths)*4
}

// CompressionRatio returns decoded/encoded size; > 1 means RLE pays off.
func (r *RLE) CompressionRatio() float64 {
	enc := r.SizeBytes()
	if enc == 0 {
		return 1
	}
	return float64(r.n*r.Width.Bytes()) / float64(enc)
}

// WorthRLE reports whether RLE should be kept for this vector: the encoding
// selection heuristic keeps the layer only when it actually compresses.
func WorthRLE(d coltypes.Data) (*RLE, bool) {
	r := EncodeRLE(d)
	return r, r.SizeBytes() < d.SizeBytes()
}
