package encoding

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rapid/internal/bits"
)

// Dict is RAPID's string dictionary (paper §4.2): fixed- and variable-length
// strings are stored once and columns hold 32-bit codes. The dictionary
// supports updates (new strings get fresh codes without disturbing existing
// ones) and range lookups for evaluating prefix and range predicates: a
// string predicate compiles to a code-set membership test that the integer
// filter primitives evaluate.
type Dict struct {
	byCode []string         // code -> string
	byStr  map[string]int32 // string -> code

	// The sorted view is rebuilt lazily on first range/prefix lookup, which
	// happens at query time — and the dictionary of a loaded column is shared
	// by every concurrent query — so the rebuild is guarded.
	mu     sync.Mutex
	sorted []int32 // codes in string order; immutable once built
	dirty  bool
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byStr: make(map[string]int32)}
}

// Add interns s and returns its code; existing strings keep their code
// (update support without rewriting encoded columns).
func (d *Dict) Add(s string) int32 {
	if c, ok := d.byStr[s]; ok {
		return c
	}
	c := int32(len(d.byCode))
	d.byCode = append(d.byCode, s)
	d.byStr[s] = c
	d.mu.Lock()
	d.dirty = true
	d.mu.Unlock()
	return c
}

// Code returns the code of s, or -1 when absent.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.byStr[s]; ok {
		return c
	}
	return -1
}

// Value returns the string for a code.
func (d *Dict) Value(c int32) string {
	if c < 0 || int(c) >= len(d.byCode) {
		panic(fmt.Sprintf("encoding: dict code %d out of range", c))
	}
	return d.byCode[c]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(d.byCode) }

// SizeBytes approximates the dictionary memory footprint.
func (d *Dict) SizeBytes() int {
	n := 0
	for _, s := range d.byCode {
		n += len(s) + 4
	}
	return n
}

// sortedCodes returns the codes in string order, rebuilding the view under
// the lock if new strings were interned since. Rebuilds allocate a fresh
// slice, so the returned snapshot is immutable and callers iterate it without
// holding the lock.
func (d *Dict) sortedCodes() []int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dirty || d.sorted == nil {
		sorted := make([]int32, len(d.byCode))
		for i := range sorted {
			sorted[i] = int32(i)
		}
		sort.Slice(sorted, func(i, j int) bool {
			return d.byCode[sorted[i]] < d.byCode[sorted[j]]
		})
		d.sorted = sorted
		d.dirty = false
	}
	return d.sorted
}

// CodeSet is the result of a dictionary range lookup: a bitmap over codes.
// Filter primitives test membership with single-cycle bit probes.
type CodeSet struct {
	bm *bits.Vector
}

// Contains reports whether code c is in the set.
func (cs *CodeSet) Contains(c int32) bool {
	if c < 0 || int(c) >= cs.bm.Len() {
		return false
	}
	return cs.bm.Test(int(c))
}

// Count returns the number of codes in the set.
func (cs *CodeSet) Count() int { return cs.bm.Count() }

// Bitmap exposes the underlying bitmap (for primitive kernels).
func (cs *CodeSet) Bitmap() *bits.Vector { return cs.bm }

func (d *Dict) emptySet() *CodeSet {
	n := len(d.byCode)
	if n == 0 {
		n = 1
	}
	return &CodeSet{bm: bits.NewVector(n)}
}

// RangeCodes returns the codes of all strings in the given range.
// Empty bounds mean unbounded on that side.
func (d *Dict) RangeCodes(lo, hi string, loIncl, hiIncl bool) *CodeSet {
	sorted := d.sortedCodes()
	cs := d.emptySet()
	start := 0
	if lo != "" {
		start = sort.Search(len(sorted), func(i int) bool {
			s := d.byCode[sorted[i]]
			if loIncl {
				return s >= lo
			}
			return s > lo
		})
	}
	for i := start; i < len(sorted); i++ {
		s := d.byCode[sorted[i]]
		if hi != "" {
			if hiIncl && s > hi {
				break
			}
			if !hiIncl && s >= hi {
				break
			}
		}
		cs.bm.Set(int(sorted[i]))
	}
	return cs
}

// PrefixCodes returns the codes of all strings with the given prefix — the
// LIKE 'p%' lookup of §4.2.
func (d *Dict) PrefixCodes(prefix string) *CodeSet {
	sorted := d.sortedCodes()
	cs := d.emptySet()
	start := sort.Search(len(sorted), func(i int) bool {
		return d.byCode[sorted[i]] >= prefix
	})
	for i := start; i < len(sorted); i++ {
		s := d.byCode[sorted[i]]
		if !strings.HasPrefix(s, prefix) {
			break
		}
		cs.bm.Set(int(sorted[i]))
	}
	return cs
}

// ContainsCodes returns codes of strings containing the substring — used by
// LIKE '%x%' predicates. This is a full dictionary scan, but the dictionary
// is small relative to the column (the point of dictionary encoding).
func (d *Dict) ContainsCodes(sub string) *CodeSet {
	return d.MatchCodes(func(s string) bool { return strings.Contains(s, sub) })
}

// SuffixCodes returns codes of strings ending in suffix (LIKE '%x').
func (d *Dict) SuffixCodes(suffix string) *CodeSet {
	return d.MatchCodes(func(s string) bool { return strings.HasSuffix(s, suffix) })
}

// MatchCodes returns the codes of all strings satisfying an arbitrary
// predicate (full dictionary scan).
func (d *Dict) MatchCodes(match func(string) bool) *CodeSet {
	cs := d.emptySet()
	for c, s := range d.byCode {
		if match(s) {
			cs.bm.Set(c)
		}
	}
	return cs
}

// CompareCodes returns the set of codes whose strings satisfy `s op val`
// for op in <, <=, >, >=. An unsupported operator is a query error (the
// generic comparison path upstream should have handled =/<>), not a panic:
// a malformed plan must fail the query, not crash the worker.
func (d *Dict) CompareCodes(op string, val string) (*CodeSet, error) {
	switch op {
	case "<":
		return d.RangeCodes("", val, true, false), nil
	case "<=":
		return d.RangeCodes("", val, true, true), nil
	case ">":
		return d.RangeCodes(val, "", false, true), nil
	case ">=":
		return d.RangeCodes(val, "", true, true), nil
	}
	return nil, fmt.Errorf("encoding: unsupported dict comparison %q", op)
}

// SortRank returns, for each code, its rank in string order. ORDER BY on a
// dictionary column sorts by rank rather than decoding strings.
func (d *Dict) SortRank() []int32 {
	sorted := d.sortedCodes()
	rank := make([]int32, len(d.byCode))
	for r, c := range sorted {
		rank[c] = int32(r)
	}
	return rank
}
