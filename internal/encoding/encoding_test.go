package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rapid/internal/coltypes"
)

func TestParseDecimal(t *testing.T) {
	cases := []struct {
		in       string
		unscaled int64
		scale    int8
	}{
		{"123", 123, 0},
		{"-4.50", -45, 1}, // trailing zero trimmed
		{".25", 25, 2},
		{"0", 0, 0},
		{"-0.001", -1, 3},
		{"+7.1", 71, 1},
		{"100.00", 100, 0},
	}
	for _, c := range cases {
		d, err := ParseDecimal(c.in)
		if err != nil {
			t.Fatalf("ParseDecimal(%q): %v", c.in, err)
		}
		if d.Unscaled != c.unscaled || d.Scale != c.scale {
			t.Fatalf("ParseDecimal(%q) = {%d,%d}, want {%d,%d}", c.in, d.Unscaled, d.Scale, c.unscaled, c.scale)
		}
	}
	for _, bad := range []string{"", ".", "abc", "1.2.3", "1e5"} {
		if _, err := ParseDecimal(bad); err == nil {
			t.Fatalf("ParseDecimal(%q) should fail", bad)
		}
	}
}

func TestDecimalString(t *testing.T) {
	cases := map[string]Decimal{
		"123":    {123, 0},
		"1.23":   {123, 2},
		"-0.05":  {-5, 2},
		"0.001":  {1, 3},
		"-12.40": {-1240, 2},
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("(%d,%d).String() = %q, want %q", d.Unscaled, d.Scale, got, want)
		}
	}
}

func TestRescale(t *testing.T) {
	d := Decimal{12345, 2} // 123.45
	if v, ok := d.Rescale(4); !ok || v != 1234500 {
		t.Fatalf("up-rescale: %d %v", v, ok)
	}
	if v, ok := d.Rescale(2); !ok || v != 12345 {
		t.Fatalf("same-scale: %d %v", v, ok)
	}
	if _, ok := d.Rescale(1); ok {
		t.Fatal("down-rescale losing digits should fail")
	}
	if v, ok := (Decimal{12300, 2}).Rescale(0); !ok || v != 123 {
		t.Fatalf("down-rescale of trailing zeros: %d %v", v, ok)
	}
	// Overflow on the way up.
	big := Decimal{1 << 60, 0}
	if _, ok := big.Rescale(5); ok {
		t.Fatal("overflowing rescale should fail")
	}
}

func TestChooseScale(t *testing.T) {
	vals := []Decimal{{100, 0}, {5, 1}, {25, 2}, {1230, 3}} // 100, 0.5, 0.25, 1.230
	if s := ChooseScale(vals); s != 2 {
		t.Fatalf("ChooseScale = %d, want 2 (1.230 normalizes to scale 2)", s)
	}
	if s := ChooseScale(nil); s != 0 {
		t.Fatalf("ChooseScale(nil) = %d", s)
	}
}

func TestEncodeDSBRoundTrip(t *testing.T) {
	vals := []Decimal{
		MustParseDecimal("1.5"),
		MustParseDecimal("-2.25"),
		MustParseDecimal("100"),
		MustParseDecimal("0.01"),
	}
	v := EncodeDSB(vals)
	if v.Scale != 2 || v.HasExceptions() {
		t.Fatalf("scale=%d exceptions=%v", v.Scale, v.Exceptions)
	}
	want := []int64{150, -225, 10000, 1}
	for i, w := range want {
		if v.Values[i] != w {
			t.Fatalf("Values[%d] = %d, want %d", i, v.Values[i], w)
		}
		if got := v.Decode(i); got.Cmp(vals[i]) != 0 {
			t.Fatalf("Decode(%d) = %s, want %s", i, got, vals[i])
		}
	}
}

func TestEncodeDSBExceptions(t *testing.T) {
	// A 1/3-like value at a scale the common vector cannot hold: force the
	// common scale low and check the exception path preserves exactness.
	vals := []Decimal{
		{15, 1},                  // 1.5
		{333333333333333333, 18}, // 0.333... needs scale 18
	}
	v := EncodeDSBAt(vals, 1)
	if !v.HasExceptions() {
		t.Fatal("expected exception for scale-18 value")
	}
	if got := v.Decode(1); got != vals[1] {
		t.Fatalf("exception Decode = %v, want %v", got, vals[1])
	}
	if got := v.Decode(0); got.Unscaled != 15 || got.Scale != 1 {
		t.Fatalf("normal Decode = %v", got)
	}
	// The in-vector approximation must be the truncation (order-friendly).
	if v.Values[1] != 3 { // 0.333.. at scale 1 -> 3
		t.Fatalf("approximation = %d, want 3", v.Values[1])
	}
}

func TestDSBQuickRoundTrip(t *testing.T) {
	f := func(raw []int64, scaleRaw uint8) bool {
		scale := int8(scaleRaw % 6)
		vals := make([]Decimal, len(raw))
		for i, r := range raw {
			vals[i] = Decimal{Unscaled: r % 1_000_000, Scale: scale}
		}
		v := EncodeDSB(vals)
		for i := range vals {
			if v.Decode(i).Cmp(vals[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Add("apple")
	b := d.Add("banana")
	if d.Add("apple") != a {
		t.Fatal("re-Add must return existing code")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Code("banana") != b || d.Code("cherry") != -1 {
		t.Fatal("Code lookup wrong")
	}
	if d.Value(a) != "apple" {
		t.Fatal("Value lookup wrong")
	}
	if d.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestDictRangeAndPrefix(t *testing.T) {
	d := NewDict()
	words := []string{"delta", "alpha", "charlie", "bravo", "alphabet", "echo"}
	for _, w := range words {
		d.Add(w)
	}
	// Range [alpha, charlie] inclusive.
	cs := d.RangeCodes("alpha", "charlie", true, true)
	wantIn := []string{"alpha", "alphabet", "bravo", "charlie"}
	if cs.Count() != len(wantIn) {
		t.Fatalf("range count = %d, want %d", cs.Count(), len(wantIn))
	}
	for _, w := range wantIn {
		if !cs.Contains(d.Code(w)) {
			t.Fatalf("%q missing from range", w)
		}
	}
	if cs.Contains(d.Code("delta")) {
		t.Fatal("delta should be out of range")
	}
	// Exclusive bounds.
	ex := d.RangeCodes("alpha", "charlie", false, false)
	if ex.Contains(d.Code("alpha")) || ex.Contains(d.Code("charlie")) {
		t.Fatal("exclusive bounds included endpoints")
	}
	if !ex.Contains(d.Code("bravo")) {
		t.Fatal("bravo missing from exclusive range")
	}
	// Prefix.
	p := d.PrefixCodes("alph")
	if p.Count() != 2 || !p.Contains(d.Code("alpha")) || !p.Contains(d.Code("alphabet")) {
		t.Fatal("prefix lookup wrong")
	}
	// Updates after a lookup must be visible to the next lookup.
	d.Add("alphorn")
	p2 := d.PrefixCodes("alph")
	if p2.Count() != 3 {
		t.Fatalf("prefix after update = %d, want 3", p2.Count())
	}
	// Contains (substring).
	sub := d.ContainsCodes("lph")
	if sub.Count() != 3 {
		t.Fatalf("substring count = %d", sub.Count())
	}
}

func TestDictCompareCodes(t *testing.T) {
	d := NewDict()
	for _, w := range []string{"a", "b", "c", "d"} {
		d.Add(w)
	}
	cmp := func(op, val string) *CodeSet {
		t.Helper()
		cs, err := d.CompareCodes(op, val)
		if err != nil {
			t.Fatalf("CompareCodes(%q, %q): %v", op, val, err)
		}
		return cs
	}
	if cs := cmp("<", "c"); cs.Count() != 2 {
		t.Fatalf("< c: %d", cs.Count())
	}
	if cs := cmp("<=", "c"); cs.Count() != 3 {
		t.Fatalf("<= c: %d", cs.Count())
	}
	if cs := cmp(">", "a"); cs.Count() != 3 {
		t.Fatalf("> a: %d", cs.Count())
	}
	if cs := cmp(">=", "b"); cs.Count() != 3 {
		t.Fatalf(">= b: %d", cs.Count())
	}
	if _, err := d.CompareCodes("~", "c"); err == nil {
		t.Fatal("unsupported operator must be an error, not a panic")
	}
}

func TestDictSortRank(t *testing.T) {
	d := NewDict()
	d.Add("zebra") // code 0
	d.Add("ant")   // code 1
	d.Add("mole")  // code 2
	rank := d.SortRank()
	if rank[1] != 0 || rank[2] != 1 || rank[0] != 2 {
		t.Fatalf("ranks = %v", rank)
	}
}

func TestDictCodeSetOutOfRange(t *testing.T) {
	d := NewDict()
	d.Add("x")
	cs := d.PrefixCodes("x")
	if cs.Contains(-1) || cs.Contains(99) {
		t.Fatal("out-of-range codes must not be contained")
	}
}

func TestRLERoundTrip(t *testing.T) {
	d := coltypes.FromInt64s(coltypes.W4, []int64{5, 5, 5, 7, 7, 1, 1, 1, 1, 9})
	r := EncodeRLE(d)
	if r.Runs() != 4 {
		t.Fatalf("Runs = %d, want 4", r.Runs())
	}
	dec := r.Decode()
	if dec.Len() != d.Len() {
		t.Fatalf("decoded len = %d", dec.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if dec.Get(i) != d.Get(i) {
			t.Fatalf("row %d: %d != %d", i, dec.Get(i), d.Get(i))
		}
	}
	if r.CompressionRatio() <= 1 {
		t.Fatalf("ratio = %f, expected compression", r.CompressionRatio())
	}
}

func TestRLEEmptyAndSingle(t *testing.T) {
	empty := EncodeRLE(coltypes.New(coltypes.W8, 0))
	if empty.Runs() != 0 || empty.Decode().Len() != 0 {
		t.Fatal("empty RLE wrong")
	}
	one := EncodeRLE(coltypes.FromInt64s(coltypes.W1, []int64{42}))
	if one.Runs() != 1 || one.Decode().Get(0) != 42 {
		t.Fatal("single RLE wrong")
	}
}

func TestWorthRLE(t *testing.T) {
	constant := coltypes.New(coltypes.W8, 1000) // all zero: compresses
	if _, ok := WorthRLE(constant); !ok {
		t.Fatal("constant column should be worth RLE")
	}
	rng := rand.New(rand.NewSource(1))
	random := coltypes.New(coltypes.W4, 1000)
	for i := 0; i < 1000; i++ {
		random.Set(i, int64(rng.Int31()))
	}
	if _, ok := WorthRLE(random); ok {
		t.Fatal("random column should not be worth RLE")
	}
}

// Property: RLE round-trips arbitrary vectors.
func TestRLEQuick(t *testing.T) {
	f := func(vals []int16) bool {
		d := coltypes.New(coltypes.W2, len(vals))
		for i, v := range vals {
			d.Set(i, int64(v%8)) // small domain creates runs
		}
		dec := EncodeRLE(d).Decode()
		for i := range vals {
			if dec.Get(i) != d.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDictConcurrentLookups pins the concurrency contract of the lazy sorted
// view: range, prefix and rank lookups on one shared dictionary must be safe
// from concurrent queries (run with -race). The lazy rebuild used to race
// when two queries both triggered the first sorted lookup.
func TestDictConcurrentLookups(t *testing.T) {
	d := NewDict()
	words := []string{"apple", "apricot", "banana", "cherry", "date", "fig", "grape", "kiwi"}
	for _, w := range words {
		d.Add(w)
	}
	const goroutines = 8
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				if n := d.PrefixCodes("ap").Count(); n != 2 {
					t.Errorf("goroutine %d: PrefixCodes(ap) = %d codes, want 2", g, n)
					return
				}
				if n := d.RangeCodes("banana", "fig", true, true).Count(); n != 4 {
					t.Errorf("goroutine %d: RangeCodes = %d codes, want 4", g, n)
					return
				}
				if rank := d.SortRank(); len(rank) != len(words) {
					t.Errorf("goroutine %d: SortRank len %d, want %d", g, len(rank), len(words))
					return
				}
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
}

// TestDictAddInvalidatesSortedView checks the lazy view is rebuilt after new
// strings are interned, and that a previously returned snapshot is not
// mutated in place.
func TestDictAddInvalidatesSortedView(t *testing.T) {
	d := NewDict()
	d.Add("b")
	d.Add("d")
	before := d.SortRank()
	d.Add("a")
	after := d.SortRank()
	if len(after) != 3 {
		t.Fatalf("rank after Add has %d entries, want 3", len(after))
	}
	if got := d.PrefixCodes("a").Count(); got != 1 {
		t.Fatalf("PrefixCodes(a) after Add = %d, want 1", got)
	}
	if len(before) != 2 {
		t.Fatalf("earlier snapshot mutated: len %d, want 2", len(before))
	}
}
