package encoding

import (
	"testing"

	"rapid/internal/coltypes"
)

// FuzzDictRLERoundTrip drives the two §4.2 encoding layers from raw bytes:
// RLE must decode to exactly the vector it encoded at every column width,
// and the dictionary must intern/decode consistently under interleaved adds
// and repeated lookups.
func FuzzDictRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 1, 1, 255, 255, 0, 0, 0, 7})
	f.Add([]byte("abca bcab cabc"))
	f.Add([]byte{0x80, 0x7f, 0xff, 0x01, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, raw []byte) {
		widths := []coltypes.Width{coltypes.W1, coltypes.W2, coltypes.W4, coltypes.W8}
		w := widths[len(raw)%len(widths)]

		// Build a vector from the bytes, sign-extended and clamped to the
		// width's domain so Set never rejects the value.
		d := coltypes.New(w, len(raw))
		for i, b := range raw {
			v := int64(int8(b)) // exercise negatives
			if v < w.MinInt() {
				v = w.MinInt()
			}
			if v > w.MaxInt() {
				v = w.MaxInt()
			}
			d.Set(i, v)
		}

		r := EncodeRLE(d)
		if r.Len() != d.Len() {
			t.Fatalf("width %d: RLE.Len = %d, want %d", w, r.Len(), d.Len())
		}
		dec := r.Decode()
		for i := 0; i < d.Len(); i++ {
			if dec.Get(i) != d.Get(i) {
				t.Fatalf("width %d: row %d decoded %d, want %d", w, i, dec.Get(i), d.Get(i))
			}
		}
		// Run structure sanity: runs cover the rows exactly, and adjacent
		// runs never share a value (otherwise they'd be one run).
		total := 0
		for i, l := range r.Lengths {
			if l <= 0 {
				t.Fatalf("width %d: non-positive run length %d", w, l)
			}
			total += int(l)
			if i > 0 && r.Values[i] == r.Values[i-1] {
				t.Fatalf("width %d: adjacent runs share value %d", w, r.Values[i])
			}
		}
		if total != d.Len() {
			t.Fatalf("width %d: runs cover %d rows, want %d", w, total, d.Len())
		}

		// Dictionary: intern 3-byte windows of the input, then verify every
		// code decodes back to its string and re-adding is idempotent.
		dict := NewDict()
		var codes []int32
		var strs []string
		for i := 0; i+3 <= len(raw); i += 3 {
			s := string(raw[i : i+3])
			codes = append(codes, dict.Add(s))
			strs = append(strs, s)
		}
		for i, c := range codes {
			if got := dict.Value(c); got != strs[i] {
				t.Fatalf("dict.Value(%d) = %q, want %q", c, got, strs[i])
			}
			if got := dict.Code(strs[i]); got != c {
				t.Fatalf("dict.Code(%q) = %d, want %d", strs[i], got, c)
			}
			if again := dict.Add(strs[i]); again != c {
				t.Fatalf("dict.Add(%q) again = %d, want stable code %d", strs[i], again, c)
			}
		}
		if dict.Code("\x00never-interned\x01") != -1 {
			t.Fatalf("dict.Code on absent string should be -1")
		}
	})
}
