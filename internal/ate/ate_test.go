package ate

import (
	"sync"
	"sync/atomic"
	"testing"

	"rapid/internal/dpu"
)

func newSoC(t testing.TB) *dpu.SoC {
	t.Helper()
	return dpu.MustNew(dpu.DefaultConfig())
}

func TestSendRecvOrdering(t *testing.T) {
	soc := newSoC(t)
	r := NewRouter(soc.Config())
	from, to := soc.Core(0), soc.Core(9) // cross-macro
	for i := 0; i < 10; i++ {
		r.Send(from, 9, i)
	}
	for i := 0; i < 10; i++ {
		m := r.Recv(to)
		if m.Payload.(int) != i {
			t.Fatalf("message %d out of order: got %v", i, m.Payload)
		}
		if m.From != 0 || m.To != 9 {
			t.Fatalf("message routing wrong: %+v", m)
		}
	}
	if _, ok := r.TryRecv(to); ok {
		t.Fatal("inbox should be empty")
	}
}

func TestSendChargesCrossbarCost(t *testing.T) {
	soc := newSoC(t)
	r := NewRouter(soc.Config())
	intra := soc.Core(0)
	r.Send(intra, 1, nil) // same macro
	intraCost := intra.Cycles()
	inter := soc.Core(1)
	r.Send(inter, 31, nil) // macro 0 -> macro 3
	interCost := inter.Cycles()
	if interCost <= intraCost {
		t.Fatalf("inter-macro send (%d) should cost more than intra (%d)", interCost, intraCost)
	}
}

func TestPendingAndBounds(t *testing.T) {
	soc := newSoC(t)
	r := NewRouter(soc.Config())
	r.Send(soc.Core(0), 5, "x")
	if r.Pending(5) != 1 {
		t.Fatalf("Pending = %d", r.Pending(5))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad destination")
		}
	}()
	r.Send(soc.Core(0), 99, nil)
}

func TestConcurrentAllToAll(t *testing.T) {
	soc := newSoC(t)
	r := NewRouter(soc.Config())
	const perPair = 8
	n := soc.Config().NumCores
	var wg sync.WaitGroup
	var received atomic.Int64
	for c := 0; c < n; c++ {
		wg.Add(2)
		go func(id int) { // sender: messages to every other core
			defer wg.Done()
			core := soc.Core(id)
			for p := 0; p < perPair; p++ {
				for dst := 0; dst < n; dst++ {
					if dst != id {
						r.Send(core, dst, p)
					}
				}
			}
		}(c)
		go func(id int) { // receiver
			defer wg.Done()
			core := soc.Core(id)
			want := perPair * (n - 1)
			for i := 0; i < want; i++ {
				r.Recv(core)
				received.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if got := received.Load(); got != int64(perPair*n*(n-1)) {
		t.Fatalf("received %d messages, want %d", got, perPair*n*(n-1))
	}
}

func TestMutex(t *testing.T) {
	soc := newSoC(t)
	var mu Mutex
	counter := 0
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			core := soc.Core(id)
			for i := 0; i < 500; i++ {
				mu.Lock(core)
				counter++
				mu.Unlock(core)
			}
		}(c)
	}
	wg.Wait()
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000 (mutex broken)", counter)
	}
	if soc.Core(0).Cycles() == 0 {
		t.Fatal("mutex should charge cycles")
	}
}

func TestBarrierCyclic(t *testing.T) {
	soc := newSoC(t)
	const n = 8
	const rounds = 50
	b := NewBarrier(n)
	if b.N() != n {
		t.Fatalf("N = %d", b.N())
	}
	var phase atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			core := soc.Core(id)
			for r := 0; r < rounds; r++ {
				before := phase.Load()
				if before < int64(r) {
					violations.Add(1)
				}
				b.Wait(core)
				if id == 0 {
					phase.Add(1)
				}
				b.Wait(core)
			}
		}(c)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d barrier ordering violations", violations.Load())
	}
	if phase.Load() != rounds {
		t.Fatalf("phase = %d, want %d", phase.Load(), rounds)
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}
