// Package ate models the Atomic Transaction Engine of the RAPID DPU (paper
// §2.4): a 2-level crossbar connecting the 8 dpCores of a macro at the first
// level and the 4 macros at the second, with hardware-managed message
// delivery and guaranteed point-to-point ordering.
//
// The DPU is not cache coherent, so ALL inter-core communication in RAPID
// goes through ATE messages (or DMS transfers). This package preserves that
// structure: the QEF never shares mutable state between cores directly; it
// sends messages. Functionally the crossbar is a set of per-core FIFO
// channels (which gives point-to-point ordering for free); the cost model
// charges the sender the crossbar traversal cycles.
package ate

import (
	"fmt"
	"sync"

	"rapid/internal/dpu"
)

// Message is one ATE datagram: a small payload delivered to a core's inbox.
// On hardware the payload is a DMEM pointer plus a few words; here it is an
// arbitrary value, typically an operator control token or a buffer handle.
type Message struct {
	From    int
	To      int
	Payload any
}

// Router is the 2-level crossbar. It is safe for concurrent use by all
// cores.
type Router struct {
	cfg     dpu.Config
	inboxes []chan Message
}

// DefaultInboxDepth is the per-core hardware message queue depth.
const DefaultInboxDepth = 64

// NewRouter builds a crossbar for the given SoC configuration.
func NewRouter(cfg dpu.Config) *Router {
	r := &Router{cfg: cfg, inboxes: make([]chan Message, cfg.NumCores)}
	for i := range r.inboxes {
		r.inboxes[i] = make(chan Message, DefaultInboxDepth)
	}
	return r
}

func (r *Router) macroOf(core int) int { return core / r.cfg.CoresPerMacro }

// Send delivers a message from core `from` to core `to`, blocking if the
// destination inbox is full (hardware backpressure). The sender is charged
// the descriptor-post plus crossbar-hop cycles.
func (r *Router) Send(from *dpu.Core, to int, payload any) {
	if to < 0 || to >= len(r.inboxes) {
		panic(fmt.Sprintf("ate: destination core %d out of range", to))
	}
	from.Charge(dpu.ATEMessageCycles(from.Macro(), r.macroOf(to)))
	r.inboxes[to] <- Message{From: from.ID(), To: to, Payload: payload}
}

// Recv blocks until a message arrives at the core's inbox. The hardware ATE
// raises an interrupt and hands the dpCore a DMEM pointer; we charge one
// descriptor-handling cost.
func (r *Router) Recv(core *dpu.Core) Message {
	m := <-r.inboxes[core.ID()]
	core.Charge(dpu.ATESendCycles)
	return m
}

// TryRecv returns a pending message without blocking.
func (r *Router) TryRecv(core *dpu.Core) (Message, bool) {
	select {
	case m := <-r.inboxes[core.ID()]:
		core.Charge(dpu.ATESendCycles)
		return m, true
	default:
		return Message{}, false
	}
}

// Pending returns the number of undelivered messages for a core.
func (r *Router) Pending(core int) int { return len(r.inboxes[core]) }

// Mutex is an ATE-backed mutual exclusion primitive (paper §2.4 lists mutex
// among the synchronization primitives the ATE enables). Lock/Unlock charge
// the acquiring core the round-trip message cost.
type Mutex struct {
	mu sync.Mutex
}

// Lock acquires the mutex on behalf of core.
func (m *Mutex) Lock(core *dpu.Core) {
	core.Charge(2 * dpu.ATESendCycles)
	m.mu.Lock()
}

// Unlock releases the mutex on behalf of core.
func (m *Mutex) Unlock(core *dpu.Core) {
	core.Charge(dpu.ATESendCycles)
	m.mu.Unlock()
}

// Barrier is a reusable (cyclic) barrier across n participants, built the
// way RAPID builds it on hardware: participants message a coordinator and
// wait for a broadcast. The cost charged per participant is one send plus
// one broadcast receive across the crossbar.
type Barrier struct {
	n       int
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("ate: barrier size must be positive")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks core until all n participants have arrived, then releases the
// whole generation.
func (b *Barrier) Wait(core *dpu.Core) {
	// Arrival message to coordinator + broadcast back (worst case two
	// crossbar levels each way).
	core.Charge(2 * (dpu.ATESendCycles + 2*dpu.ATEHopCycles))

	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// N returns the participant count.
func (b *Barrier) N() int { return b.n }
