package bench

import (
	"fmt"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dpu"
	"rapid/internal/mem"
	"rapid/internal/ops"
	"rapid/internal/primitives"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
)

// Ablation studies for the design choices the paper argues for. Each table
// compares RAPID's choice against the alternative it displaced.

// RunAblationJoinAlgorithm compares the partitioned hash join (§6) against
// the sort-merge join (§6.5) on the simulated DPU.
func RunAblationJoinAlgorithm(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 18
	}
	t := &Table{
		Title:   "Ablation: hash join vs sort-merge join (simulated DPU)",
		Headers: []string{"algorithm", "sim ms", "Mrows/s (probe)"},
	}
	nb, np := rows/4, rows
	build := benchIntRel([]string{"k", "v"},
		seqI64(nb, func(i int) int64 { return int64(i) }),
		seqI64(nb, func(i int) int64 { return int64(i * 3) }))
	probe := benchIntRel([]string{"k"},
		seqI64(np, func(i int) int64 { return int64(i % (2 * nb)) }))
	spec := ops.JoinSpec{
		Type: ops.InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		ProbePayload: []int{0}, BuildPayload: []int{1}, Vectorized: true,
		Scheme: ops.PartScheme{Rounds: []int{32}},
	}
	run := func(name string, fn func(ctx *qef.Context) error) {
		ctx := qef.NewContext(qef.ModeDPU)
		if err := fn(ctx); err != nil {
			t.AddRow(name, "ERR", err.Error())
			return
		}
		sec := ctx.SimElapsed()
		t.AddRow(name, f3(sec*1e3), f1(float64(np)/sec/1e6))
	}
	run("hash join (§6)", func(ctx *qef.Context) error {
		_, err := ops.HashJoin(ctx, build, probe, spec)
		return err
	})
	run("sort-merge join (§6.5)", func(ctx *qef.Context) error {
		_, err := ops.SortMergeJoin(ctx, build, probe, spec)
		return err
	})
	t.AddNote("the paper follows Balkesen et al. [5] in preferring hash joins on this class of hardware")
	return t
}

// RunAblationPartitionScheme compares the optimized partitioning scheme
// (§5.3) against naive alternatives for a large fan-out target.
func RunAblationPartitionScheme(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 19
	}
	t := &Table{
		Title:   "Ablation: partition scheme optimization (target 1024 partitions)",
		Headers: []string{"scheme", "modeled cost ms", "sim ms"},
	}
	cols := mkCols(rows, 2)
	dataBytes := int64(rows * 8)
	optimized := qcomp.OptimizeScheme(1024, dataBytes)
	candidates := []struct {
		name   string
		scheme ops.PartScheme
	}{
		{"optimized: " + optimized.String(), optimized},
		{"asymmetric: 32x2x16", ops.PartScheme{Rounds: []int{32, 2, 16}}},
		{"max-first: 2x512", ops.PartScheme{Rounds: []int{2, 512}}},
		{"four rounds: 4x4x8x8", ops.PartScheme{Rounds: []int{4, 4, 8, 8}}},
	}
	for _, c := range candidates {
		if err := c.scheme.Validate(); err != nil {
			t.AddRow(c.name, "invalid", err.Error())
			continue
		}
		ctx := qef.NewContext(qef.ModeDPU)
		_, err := ops.PartitionByHash(ctx, cols, []int{0}, c.scheme, 256)
		if err != nil {
			t.AddRow(c.name, "ERR", err.Error())
			continue
		}
		t.AddRow(c.name, f3(qcomp.SchemeCost(c.scheme, dataBytes)*1e3), f3(ctx.SimElapsed()*1e3))
	}
	t.AddNote("heuristics of §5.3: power-of-two fan-outs, bounded per round, fewest rounds, symmetric splits")
	return t
}

// RunAblationFilterRepr compares the RID-list and bit-vector row
// representations across selectivities (the 1/32 rule of §5.4).
func RunAblationFilterRepr(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 20
	}
	t := &Table{
		Title:   "Ablation: RID list vs bit-vector row representation",
		Headers: []string{"selectivity", "chosen", "RID bytes", "bitvec bytes", "2nd-pred cycles (RID)", "2nd-pred cycles (BV)"},
	}
	d := coltypes.New(coltypes.W4, rows)
	for i := 0; i < rows; i++ {
		d.Set(i, int64(i%100000))
	}
	for _, selPct := range []float64{0.01, 0.1, 1, 3.125, 10, 50} {
		threshold := int64(float64(100000) * selPct / 100)
		hits := 0
		for i := 0; i < rows; i++ {
			if d.Get(i) < threshold {
				hits++
			}
		}
		chosen := "bit-vector"
		if bits.ChooseRIDs(hits, rows) {
			chosen = "RID list"
		}
		// Cost of evaluating a SECOND predicate under each representation.
		socR := dpu.MustNew(dpu.DefaultConfig())
		rids := primitives.FilterConstRIDs(nil, d, primitives.LT, threshold, nil, nil)
		primitives.FilterConstRIDs(socR.Core(0), d, primitives.GE, 0, rids, nil)
		socB := dpu.MustNew(dpu.DefaultConfig())
		bv := bits.NewVector(rows)
		primitives.FilterConstBV(nil, d, primitives.LT, threshold, bv)
		out := bits.NewVector(rows)
		primitives.FilterConstBVMasked(socB.Core(0), d, primitives.GE, 0, bv, out)
		t.AddRow(
			fmt.Sprintf("%.3f%%", selPct),
			chosen,
			fmt.Sprintf("%d", 4*hits),
			fmt.Sprintf("%d", bits.VectorSizeBytes(rows)),
			fmt.Sprintf("%d", socR.Core(0).Cycles()),
			fmt.Sprintf("%d", socB.Core(0).Cycles()),
		)
	}
	t.AddNote("§5.4: RID lists win below 1/32 (3.125%%) qualifying rows; bit-vectors above")
	return t
}

// RunAblationCompactHT compares the bit-packed compact hash table (§6.3)
// against a plain 32-bit-array layout for DMEM capacity.
func RunAblationCompactHT() *Table {
	t := &Table{
		Title:   "Ablation: compact (ceil(log2 N)-bit) hash table vs 32-bit arrays",
		Headers: []string{"partition rows", "compact bytes", "plain32 bytes", "fits 32KiB DMEM (compact/plain)"},
	}
	for _, n := range []int{1024, 2048, 4096, 8192, 12288} {
		buckets := primitives.BucketsFor(n)
		compact := primitives.HTSizeBytes(n, buckets)
		plain := 4*n + 4*buckets
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", compact),
			fmt.Sprintf("%d", plain),
			fmt.Sprintf("%v / %v", compact <= mem.DMEMSize/2, plain <= mem.DMEMSize/2),
		)
	}
	t.AddNote("the compact layout lets partitions 2-3x larger stay DMEM-resident, cutting partitioning rounds")
	return t
}

// RunAblations returns every ablation table.
func RunAblations(rows int) []*Table {
	return []*Table{
		RunAblationJoinAlgorithm(rows / 4),
		RunAblationPartitionScheme(rows / 2),
		RunAblationFilterRepr(rows),
		RunAblationCompactHT(),
	}
}

func seqI64(n int, f func(int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func benchIntRel(names []string, cols ...[]int64) *ops.Relation {
	rc := make([]ops.Col, len(cols))
	for i := range cols {
		rc[i] = ops.Col{Name: names[i], Type: coltypes.Int(), Data: coltypes.I64(cols[i])}
	}
	return ops.MustRelation(rc)
}
