package bench

import (
	"io"
	"net/http"
	"sync"
	"testing"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

var (
	profBenchOnce sync.Once
	profBenchDB   *hostdb.Database
	profBenchQ1   string
	profBenchErr  error
)

func profBenchSetup(b *testing.B) (*hostdb.Database, string) {
	b.Helper()
	profBenchOnce.Do(func() {
		profBenchDB, profBenchErr = SetupTPCH(0.01)
		for _, q := range tpch.Queries() {
			if q.Name == "Q1" {
				profBenchQ1 = q.SQL
			}
		}
	})
	if profBenchErr != nil {
		b.Fatal(profBenchErr)
	}
	if profBenchQ1 == "" {
		b.Fatal("no Q1")
	}
	return profBenchDB, profBenchQ1
}

func benchQ1X86(b *testing.B, profile bool) {
	db, sql := profBenchSetup(b)
	opts := hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86,
		FailOnInadmissible: true, Profile: profile,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(sql, opts)
		if err != nil {
			b.Fatal(err)
		}
		if profile && res.Profile == nil {
			b.Fatal("profiling requested but no profile returned")
		}
	}
}

// The profiling-overhead guard: compare with
//
//	go test ./internal/bench -bench 'Q1X86Profile' -benchtime 20x
//
// The acceptance bar for this instrumentation is < 5% overhead on Q1.
func BenchmarkQ1X86ProfileOff(b *testing.B) { benchQ1X86(b, false) }

func BenchmarkQ1X86ProfileOn(b *testing.B) { benchQ1X86(b, true) }

// BenchmarkQ1X86ProfileOnExporter runs the profiled benchmark with the
// telemetry endpoint live and a scraper hitting /metrics throughout, so the
// <5% overhead bar is held with the exporter enabled too.
func BenchmarkQ1X86ProfileOnExporter(b *testing.B) {
	db, _ := profBenchSetup(b)
	srv, err := db.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL())
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	benchQ1X86(b, true)
	close(stop)
	<-done
}
