package bench

import "testing"

// TestQ6ScalingFloor is the ISSUE acceptance bar: sharding lineitem over 8
// nodes must buy Q6 at least a 3x simulated-throughput speedup over the
// 1-node tray.
// The scale factor must be large enough that per-node scan work dominates
// the tray's fixed costs (per-node sim floor + one gather message per
// node); at SF 0.06 the modeled speedup is a deterministic 3.6x.
func TestQ6ScalingFloor(t *testing.T) {
	db, err := SetupTPCH(0.06)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	runs, err := RunScaling(db, []int{1, 8}, []string{"Q6"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ScalingSpeedup(runs, "Q6", 8); got < 3 {
		t.Fatalf("Q6 1->8 node simulated speedup = %.2fx, want >= 3x", got)
	}
	tbl := RunScalingTable(runs)
	if len(tbl.Rows) != len(runs) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(runs))
	}
}
