package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationJoinAlgorithm(t *testing.T) {
	tbl := RunAblationJoinAlgorithm(1 << 15)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[1] == "ERR" {
			t.Fatalf("%s failed: %s", r[0], r[2])
		}
	}
	// Both must complete; the hash join should not lose badly (it is the
	// paper's primary choice).
	hash := cellF(t, tbl, 0, 1)
	merge := cellF(t, tbl, 1, 1)
	if hash > 3*merge {
		t.Fatalf("hash join (%.3f ms) far slower than sort-merge (%.3f ms)", hash, merge)
	}
}

func TestAblationPartitionScheme(t *testing.T) {
	tbl := RunAblationPartitionScheme(1 << 17)
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var optCost float64
	minCost := 1e18
	for i, r := range tbl.Rows {
		if r[1] == "invalid" || r[1] == "ERR" {
			continue
		}
		c := cellF(t, tbl, i, 1)
		if strings.HasPrefix(r[0], "optimized") {
			optCost = c
		}
		if c < minCost {
			minCost = c
		}
	}
	if optCost == 0 {
		t.Fatal("no optimized row")
	}
	// The optimizer's choice must be the cheapest candidate by its own
	// cost model.
	if optCost > minCost {
		t.Fatalf("optimized scheme cost %.3f above best candidate %.3f", optCost, minCost)
	}
}

func TestAblationFilterRepr(t *testing.T) {
	tbl := RunAblationFilterRepr(1 << 18)
	// The representation switch happens at 1/32 = 3.125%.
	for _, r := range tbl.Rows {
		sel, err := strconv.ParseFloat(strings.TrimSuffix(r[0], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if sel < 3.125 && r[1] != "RID list" {
			t.Fatalf("at %.3f%% expected RID list, got %s", sel, r[1])
		}
		if sel >= 3.125 && r[1] != "bit-vector" {
			t.Fatalf("at %.3f%% expected bit-vector, got %s", sel, r[1])
		}
	}
	// At very low selectivity the RID-driven second predicate must be far
	// cheaper than the bit-vector one.
	ridCy := cellF(t, tbl, 0, 4)
	bvCy := cellF(t, tbl, 0, 5)
	if ridCy >= bvCy {
		t.Fatalf("sparse RID pass (%v) should beat BV pass (%v)", ridCy, bvCy)
	}
}

func TestAblationCompactHT(t *testing.T) {
	tbl := RunAblationCompactHT()
	for i := range tbl.Rows {
		compact := cellF(t, tbl, i, 1)
		plain := cellF(t, tbl, i, 2)
		if compact >= plain {
			t.Fatalf("row %d: compact (%v) not smaller than plain (%v)", i, compact, plain)
		}
	}
	// The paper's point: at 4096 rows the compact table still fits half the
	// DMEM while the plain one does not — larger partitions stay resident.
	found := false
	for _, r := range tbl.Rows {
		if r[0] == "4096" && strings.HasPrefix(r[3], "true / false") {
			found = true
		}
	}
	if !found {
		t.Fatal("compact table should fit 4096 rows where plain32 does not")
	}
}
