package bench

import (
	"testing"

	"rapid/internal/hostdb"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// TestQ1ActivityEnergyWithinProvisionedBound pins the PR's acceptance
// criterion on TPC-H Q1: the activity-model energy of the DPU run stays
// inside the provisioned-power envelope, so the Fig 14 provisioned
// perf/watt figure remains recoverable as a lower bound of the
// activity-based figure.
func TestQ1ActivityEnergyWithinProvisionedBound(t *testing.T) {
	db, err := SetupTPCH(0.005)
	if err != nil {
		t.Fatal(err)
	}
	q1, ok := tpch.QueryByName("Q1")
	if !ok {
		t.Fatal("no Q1")
	}
	res, err := db.Query(q1.SQL, hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
		FailOnInadmissible: true, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasEnergy || res.Energy.TotalJoules() <= 0 {
		t.Fatalf("no energy on DPU run: %+v", res.Energy)
	}
	m := power.DefaultEnergyModel()
	bound := m.ProvisionedJoules(res.RapidSimSeconds)
	if got := res.Energy.TotalJoules(); got > bound {
		t.Fatalf("Q1 activity energy %g J exceeds provisioned %g J over %gs", got, bound, res.RapidSimSeconds)
	}
	if err := res.Profile.CheckEnergyInvariants(m); err != nil {
		t.Fatal(err)
	}

	// The same relation expressed in Fig 14 currency: activity perf/watt
	// dominates the provisioned figure.
	run := QueryRun{
		Name:        "Q1",
		HostWall:    2, // any positive wall times; the ratio cancels out
		RapidWall:   1,
		SimDPUSec:   res.RapidSimSeconds,
		X86ModelSec: res.X86ModelSeconds,
		EnergyJ:     res.Energy.TotalJoules(),
	}
	if act, prov := run.ActivityPerfPerWatt(), run.PerfPerWatt(); act < prov {
		t.Fatalf("activity perf/watt %g below provisioned %g", act, prov)
	}
}
