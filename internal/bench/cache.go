package bench

import (
	"fmt"
	"sort"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// Repeated-workload cache experiment (DESIGN.md §10): dashboards and
// canned reports re-issue the same statements against slowly-changing
// replicas, which is exactly the shape the two-tier cache targets. Each
// query runs once cold (miss, fully billed) and then a warm loop of
// identical re-issues; the experiment reports the hit rate, the cold vs
// warm p50/p99 wall latency, and the marginal vs saved energy of the warm
// hits — a hit re-executes nothing, so its billed energy must be zero.

// CacheRun is the measured cache effectiveness of one repeated query.
type CacheRun struct {
	Query string
	// Warm re-issues and how many of them hit the result cache.
	WarmRuns int
	Hits     int
	// ColdNs is the wall time of the producing (miss) run; WarmP50Ns /
	// WarmP99Ns are percentiles over the warm re-issues.
	ColdNs   int64
	WarmP50Ns int64
	WarmP99Ns int64
	// ColdEnergyNJ is the billed energy of the producing run.
	// WarmEnergyNJ is the total energy billed across ALL warm runs
	// (~zero: hits execute nothing). SavedNJ is the energy the warm hits
	// avoided, as accounted by the cache (producing cost × hits).
	ColdEnergyNJ int64
	WarmEnergyNJ int64
	SavedNJ      int64
}

// HitRate is the fraction of warm re-issues served from the result cache.
func (c CacheRun) HitRate() float64 {
	if c.WarmRuns == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.WarmRuns)
}

// P50Speedup is the cold latency over the warm median.
func (c CacheRun) P50Speedup() float64 {
	if c.WarmP50Ns == 0 {
		return 0
	}
	return float64(c.ColdNs) / float64(c.WarmP50Ns)
}

// SetupTPCHCached builds the TPC-H host database with the query cache
// enabled at its default budget.
func SetupTPCHCached(sf float64) (*hostdb.Database, error) {
	db, err := SetupTPCH(sf)
	if err != nil {
		return nil, err
	}
	db.EnableQueryCache(qcache.Config{})
	return db, nil
}

// RunCache executes each named TPC-H query once cold and warmIters times
// warm in ModeDPU, verifying the warm runs hit and return the cold run's
// relation, and reports latency percentiles and the energy ledger.
func RunCache(db *hostdb.Database, queries []string, warmIters int) ([]CacheRun, error) {
	if warmIters < 1 {
		warmIters = 1
	}
	opts := hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU, FailOnInadmissible: true,
	}
	var out []CacheRun
	for _, qname := range queries {
		q, ok := tpch.QueryByName(qname)
		if !ok {
			return nil, fmt.Errorf("unknown query %s", qname)
		}
		t0 := time.Now()
		cold, err := db.Query(q.SQL, opts)
		if err != nil {
			return nil, fmt.Errorf("%s cold: %w", qname, err)
		}
		coldNs := time.Since(t0).Nanoseconds()
		if cold.Cache == "hit" {
			return nil, fmt.Errorf("%s: cold run already cached (reuse of a warm database?)", qname)
		}
		run := CacheRun{
			Query: qname, WarmRuns: warmIters,
			ColdNs: coldNs, ColdEnergyNJ: cold.EnergyNJ,
		}
		samples := make([]int64, 0, warmIters)
		for i := 0; i < warmIters; i++ {
			t1 := time.Now()
			warm, err := db.Query(q.SQL, opts)
			if err != nil {
				return nil, fmt.Errorf("%s warm %d: %w", qname, i, err)
			}
			samples = append(samples, time.Since(t1).Nanoseconds())
			run.WarmEnergyNJ += warm.EnergyNJ
			if warm.Cache == "hit" {
				run.Hits++
				run.SavedNJ += warm.EnergySavedNJ
				if warm.Rel != cold.Rel {
					return nil, fmt.Errorf("%s warm %d: hit did not serve the cached relation", qname, i)
				}
			}
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		run.WarmP50Ns = samples[len(samples)/2]
		run.WarmP99Ns = samples[len(samples)*99/100]
		out = append(out, run)
	}
	return out, nil
}

// RunCacheTable renders the repeated-workload experiment as a report table.
func RunCacheTable(runs []CacheRun, warmIters int) *Table {
	t := &Table{
		Title: fmt.Sprintf(
			"Query cache: repeated workload, ModeDPU (1 cold + %d warm re-issues per query)", warmIters),
		Headers: []string{"query", "hit rate", "cold ms", "warm p50 µs", "warm p99 µs",
			"p50 speedup", "cold µJ", "warm marginal µJ", "µJ saved"},
	}
	for _, r := range runs {
		t.AddRow(r.Query,
			fmt.Sprintf("%.0f%%", 100*r.HitRate()),
			f2(float64(r.ColdNs)/1e6),
			f2(float64(r.WarmP50Ns)/1e3),
			f2(float64(r.WarmP99Ns)/1e3),
			fmt.Sprintf("%.0fx", r.P50Speedup()),
			f2(float64(r.ColdEnergyNJ)/1e3),
			f2(float64(r.WarmEnergyNJ)/1e3),
			f2(float64(r.SavedNJ)/1e3))
	}
	t.AddNote("a warm hit validates table versions and serves the stored relation — no parse, bind, admission, execution, DMS traffic or billed energy")
	return t
}
