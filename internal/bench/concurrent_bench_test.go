package bench

import (
	"sync"
	"testing"

	"rapid/internal/hostdb"
)

var (
	concBenchOnce sync.Once
	concBenchDB   *hostdb.Database
	concBenchErr  error
)

func concBenchSetup(b *testing.B) *hostdb.Database {
	b.Helper()
	concBenchOnce.Do(func() {
		concBenchDB, concBenchErr = SetupTPCH(0.005)
	})
	if concBenchErr != nil {
		b.Fatal(concBenchErr)
	}
	return concBenchDB
}

// benchConcurrentQPS measures closed-loop throughput of the shared-SoC
// scheduler at a fixed client count: ops/sec plus p50/p99 per-query latency
// (admission queue wait included) reported as benchmark metrics.
func benchConcurrentQPS(b *testing.B, clients int) {
	db := concBenchSetup(b)
	const opsPerClient = 4
	var last ConcurrentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunConcurrent(db, clients, opsPerClient)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops == 0 {
			b.Fatal("no queries completed")
		}
		last = res
	}
	b.ReportMetric(last.QPS(), "queries/sec")
	b.ReportMetric(float64(last.P50.Microseconds())/1e3, "p50-ms")
	b.ReportMetric(float64(last.P99.Microseconds())/1e3, "p99-ms")
	b.ReportMetric(float64(last.Shed), "shed")
}

// The scheduler throughput ladder: compare with
//
//	go test ./internal/bench -bench ConcurrentQPS -benchtime 5x
//
// QPS should rise from 1 to 4 clients (admission allows 8 concurrent by
// default) and stay near-flat from 4 to 16 while p99 grows with queueing —
// the closed-loop signature of a saturated shared SoC, not a collapsed one.
func BenchmarkConcurrentQPS1(b *testing.B) { benchConcurrentQPS(b, 1) }

func BenchmarkConcurrentQPS4(b *testing.B) { benchConcurrentQPS(b, 4) }

func BenchmarkConcurrentQPS16(b *testing.B) { benchConcurrentQPS(b, 16) }

// TestRunConcurrentSmoke keeps the harness itself honest in plain `go test`
// runs: a small fleet completes, latencies are populated, and nothing errors.
func TestRunConcurrentSmoke(t *testing.T) {
	db, err := SetupTPCH(0.002)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := RunConcurrent(db, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops+res.Shed != 4*2 {
		t.Fatalf("ops %d + shed %d != 8 issued", res.Ops, res.Shed)
	}
	if res.Ops > 0 && (res.P50 <= 0 || res.P99 < res.P50) {
		t.Fatalf("implausible latency quantiles: p50=%v p99=%v", res.P50, res.P99)
	}
	if res.QPS() <= 0 {
		t.Fatalf("QPS = %v, want > 0", res.QPS())
	}
}
