package bench

import (
	"fmt"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// Zone-map pruning effectiveness experiment (DESIGN.md §9): lineitem is
// loaded in l_shipdate order — the layout a date-partitioned warehouse
// table would have — so each 1024-row tile covers a narrow date band and
// the shipdate-range queries (Q6, Q14) can skip most tiles outright. Each
// query runs twice in ModeDPU, pruning on (profiled) and pruning force-
// disabled, proving three properties at once: the skip rate, identical
// answers, and strictly lower billing on the pruned run.

// PruningRun is the measured pruning effectiveness of one query.
type PruningRun struct {
	Query       string
	TilesTotal  int64
	TilesPruned int64
	Rows        int
	// CyclesOn/CyclesOff are the billed dpCore cycles with pruning enabled
	// and force-disabled; skipped tiles are unbilled, so On < Off whenever
	// anything was pruned.
	CyclesOn  int64
	CyclesOff int64
}

// SkipRate is the fraction of scannable tiles the zone maps rejected.
func (p PruningRun) SkipRate() float64 {
	if p.TilesTotal == 0 {
		return 0
	}
	return float64(p.TilesPruned) / float64(p.TilesTotal)
}

// SetupTPCHClustered builds the TPC-H host database with lineitem
// clustered on l_shipdate (see tpch.Config.ClusterByShipDate).
func SetupTPCHClustered(sf float64) (*hostdb.Database, error) {
	db := hostdb.New()
	cfg := tpch.Config{ScaleFactor: sf, Seed: 2018, ClusterByShipDate: true}
	if err := tpch.PopulateHostDB(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// RunPruning executes the named TPC-H queries with zone-map pruning on and
// off, checks the runs agree, and reports tile counts and billed cycles.
func RunPruning(db *hostdb.Database, queries []string) ([]PruningRun, error) {
	var out []PruningRun
	for _, qname := range queries {
		q, ok := tpch.QueryByName(qname)
		if !ok {
			return nil, fmt.Errorf("unknown query %s", qname)
		}
		on, err := db.Query(q.SQL, hostdb.QueryOptions{
			Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
			FailOnInadmissible: true, Profile: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s pruned: %w", qname, err)
		}
		if on.Profile == nil {
			return nil, fmt.Errorf("%s: no profile (%s)", qname, on.ProfileNote)
		}
		if err := on.Profile.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("%s: profile invariants: %w", qname, err)
		}
		off, err := db.Query(q.SQL, hostdb.QueryOptions{
			Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
			FailOnInadmissible: true, DisablePruning: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s unpruned: %w", qname, err)
		}
		if on.Rel.Rows() != off.Rel.Rows() {
			return nil, fmt.Errorf("%s: pruning changed the answer: %d vs %d rows",
				qname, on.Rel.Rows(), off.Rel.Rows())
		}
		out = append(out, PruningRun{
			Query:       qname,
			TilesTotal:  on.Profile.TilesTotal(),
			TilesPruned: on.Profile.TilesPruned(),
			Rows:        on.Rel.Rows(),
			CyclesOn:    on.Cycles,
			CyclesOff:   off.Cycles,
		})
	}
	return out, nil
}

// RunPruningTable renders the pruning experiment as a report table.
func RunPruningTable(runs []PruningRun) *Table {
	t := &Table{
		Title:   "Zone-map pruning: shipdate-clustered lineitem, ModeDPU (pruning on vs force-disabled)",
		Headers: []string{"query", "tiles pruned/total", "skip rate", "Mcycles on", "Mcycles off", "cycles saved"},
	}
	for _, r := range runs {
		saved := 0.0
		if r.CyclesOff > 0 {
			saved = 1 - float64(r.CyclesOn)/float64(r.CyclesOff)
		}
		t.AddRow(r.Query,
			fmt.Sprintf("%d/%d", r.TilesPruned, r.TilesTotal),
			fmt.Sprintf("%.1f%%", 100*r.SkipRate()),
			f2(float64(r.CyclesOn)/1e6),
			f2(float64(r.CyclesOff)/1e6),
			fmt.Sprintf("%.1f%%", 100*saved))
	}
	t.AddNote("skipped tiles are unbilled (no DMEM admission, DMS traffic, cycles or energy); both runs returned identical results")
	return t
}
