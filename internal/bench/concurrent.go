package bench

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/tpch"
)

// ConcurrentResult is the outcome of driving one shared database with a
// closed-loop client fleet through the shared-SoC scheduler.
type ConcurrentResult struct {
	Clients int
	Ops     int           // completed queries across all clients
	Shed    int           // queries rejected by admission control (ErrOverloaded)
	Wall    time.Duration // whole-fleet wall clock
	P50     time.Duration // median per-query latency (queue wait included)
	P99     time.Duration
}

// QPS returns completed queries per second of wall time.
func (r ConcurrentResult) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunConcurrent drives `clients` closed-loop sessions against one shared
// database: each client issues `opsPerClient` queries back to back, cycling
// through the TPC-H mix on RAPID ModeX86 (ForceOffload, so every query rides
// the shared-SoC scheduler). Per-query latencies include admission queue
// wait. Queries shed by admission control count as Shed, not as failures —
// shedding under an overdriven fleet is the scheduler working as designed.
func RunConcurrent(db *hostdb.Database, clients, opsPerClient int) (ConcurrentResult, error) {
	queries := tpch.Queries()
	opts := hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86, FailOnInadmissible: true}

	lat := make([][]time.Duration, clients)
	shed := make([]int, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]time.Duration, 0, opsPerClient)
			for i := 0; i < opsPerClient; i++ {
				q := queries[(c+i)%len(queries)]
				t0 := time.Now()
				_, err := db.Query(q.SQL, opts)
				switch {
				case errors.Is(err, sched.ErrOverloaded):
					shed[c]++
				case err != nil:
					errs[c] = fmt.Errorf("client %d %s: %w", c, q.Name, err)
					return
				default:
					lat[c] = append(lat[c], time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	res := ConcurrentResult{Clients: clients, Wall: wall}
	var all []time.Duration
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			return ConcurrentResult{}, errs[c]
		}
		all = append(all, lat[c]...)
		res.Shed += shed[c]
	}
	res.Ops = len(all)
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
	}
	return res, nil
}
