package bench

import (
	"fmt"

	"rapid/internal/bits"
	"rapid/internal/coltypes"
	"rapid/internal/dms"
	"rapid/internal/dpu"
	"rapid/internal/mem"
	"rapid/internal/ops"
	"rapid/internal/primitives"
	"rapid/internal/qcomp"
	"rapid/internal/qef"
)

// mkCols builds a synthetic relation of 4-byte columns.
func mkCols(rows, cols int) []coltypes.Data {
	out := make([]coltypes.Data, cols)
	for c := range out {
		d := coltypes.New(coltypes.W4, rows)
		for i := 0; i < rows; i++ {
			d.Set(i, int64(i*2654435761+c))
		}
		out[c] = d
	}
	return out
}

// RunFig8 regenerates Figure 8: hardware-partitioning bandwidth of the DMS
// for every strategy, 32-way over 4x4-byte columns.
func RunFig8(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 21
	}
	t := &Table{
		Title:   "Fig 8: Hardware-partitioning performance of DMS (32-way, 4x4B columns)",
		Headers: []string{"strategy", "GiB/s", "paper"},
	}
	soc := dpu.MustNew(dpu.DefaultConfig())
	eng := dms.NewEngine(dms.DefaultModel(), soc.DRAM())
	cols := mkCols(rows, 4)
	bounds := make([]int64, 31)
	for i := range bounds {
		bounds[i] = int64((i + 1)) * (1 << 58) / 32 * 16 // spread over the domain
	}
	specs := []struct {
		name string
		spec dms.PartitionSpec
	}{
		{"radix", dms.PartitionSpec{Strategy: dms.Radix, Fanout: 32, KeyCols: []int{0}}},
		{"hash-1key", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0}}},
		{"hash-2key", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0, 1}}},
		{"hash-4key", dms.PartitionSpec{Strategy: dms.Hash, Fanout: 32, KeyCols: []int{0, 1, 2, 3}}},
		{"range", dms.PartitionSpec{Strategy: dms.Range, Fanout: 32, KeyCols: []int{0}, Bounds: bounds}},
	}
	for _, s := range specs {
		_, tm, err := eng.PartitionIDs(cols, s.spec)
		if err != nil {
			t.AddRow(s.name, "ERR: "+err.Error(), "")
			continue
		}
		t.AddRow(s.name, f2(tm.BytesPerSec()/gib), "~9.3")
	}
	t.AddNote("paper: ~9.3 GiB/s for all strategies; outperforms HARP's 6 GiB/s")
	return t
}

// RunFig9 regenerates Figure 9: DMS read / read+write bandwidth over column
// count and tile size.
func RunFig9() *Table {
	t := &Table{
		Title:   "Fig 9: Read/write performance with DMS (4B columns)",
		Headers: []string{"cols", "tile", "mode", "GiB/s"},
	}
	soc := dpu.MustNew(dpu.DefaultConfig())
	eng := dms.NewEngine(dms.DefaultModel(), soc.DRAM())
	const totalRows = 1 << 18
	for _, nc := range []int{2, 4, 8, 16, 32} {
		src := mkCols(totalRows, nc)
		dstDram := make([]coltypes.Data, nc)
		for c := range dstDram {
			dstDram[c] = coltypes.New(coltypes.W4, totalRows)
		}
		for _, tile := range []int{64, 128, 256} {
			for _, rw := range []bool{false, true} {
				eng.ResetTotals()
				bufs := make([]coltypes.Data, nc)
				for c := range bufs {
					bufs[c] = coltypes.New(coltypes.W4, tile)
				}
				for lo := 0; lo < totalRows; lo += tile {
					hi := lo + tile
					if hi > totalRows {
						hi = totalRows
					}
					views := make([]coltypes.Data, nc)
					for c := range views {
						views[c] = bufs[c].Slice(0, hi-lo)
					}
					eng.Read(src, lo, hi, views)
					if rw {
						eng.Write(dstDram, lo, views, hi-lo)
					}
				}
				tot := eng.Totals()
				mode := "r"
				if rw {
					mode = "rw"
				}
				t.AddRow(fmt.Sprintf("%d", nc), fmt.Sprintf("%d", tile), mode, f2(tot.BytesPerSec()/gib))
			}
		}
	}
	t.AddNote("paper: >= 9 GiB/s at 128-row tiles (75%% of DDR3 peak); 64-row tiles slower; slight decay with more columns")
	return t
}

// RunFilterMicro regenerates the §7.2 filter micro-benchmark.
func RunFilterMicro(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 21
	}
	t := &Table{
		Title:   "§7.2 Filter operator micro-benchmark",
		Headers: []string{"metric", "measured", "paper"},
	}
	soc := dpu.MustNew(dpu.DefaultConfig())
	core := soc.Core(0)
	d := coltypes.New(coltypes.W4, rows)
	for i := 0; i < rows; i++ {
		d.Set(i, int64(i%1000))
	}
	bv := bits.NewVector(rows)
	primitives.FilterConstBV(core, d, primitives.LT, 500, bv)
	cyclesPerRow := float64(core.Cycles()) / float64(rows)
	ratePerCore := soc.Config().FreqHz / cyclesPerRow
	t.AddRow("cycles/tuple", f3(cyclesPerRow), "1.65")
	t.AddRow("Mtuples/s/core", f1(ratePerCore/1e6), "482")

	// Operator-level bandwidth: the whole filter operator (scan + predicate
	// chain) on 32 cores is DMS-bound; compute hides behind the transfers
	// ("the operator executes close to the memory bandwidth").
	ctx := qef.NewContext(qef.ModeDPU)
	wide := make([]coltypes.Data, 4)
	for c := range wide {
		w := coltypes.New(coltypes.W4, rows)
		for i := 0; i < rows; i++ {
			w.Set(i, int64(i%1000))
		}
		wide[c] = w
	}
	rel := MustBenchRelation(wide)
	sink := &ops.CountSink{}
	err := ops.RelationScan(ctx, rel, 256, func() qef.Operator {
		return &ops.FilterOp{
			Preds: []ops.Predicate{&ops.ConstCmp{Col: 0, Op: primitives.LT, Val: 500, Sel: 0.5}},
			Next:  sink,
		}
	})
	if err != nil {
		t.AddNote("operator run failed: %v", err)
		return t
	}
	opBW := float64(rows) * 16 / ctx.SimElapsed() / gib
	t.AddRow("GiB/s (32 cores, operator)", f2(opBW), "9.6")
	return t
}

// MustBenchRelation wraps raw columns as an ops.Relation for benches.
func MustBenchRelation(cols []coltypes.Data) *ops.Relation {
	rc := make([]ops.Col, len(cols))
	for i, d := range cols {
		rc[i] = ops.Col{Name: fmt.Sprintf("c%d", i), Type: coltypes.Int(), Data: d}
	}
	return ops.MustRelation(rc)
}

// RunFig10 regenerates Figure 10: software partitioning throughput over
// fan-out and tile size (2x4-byte columns, 32 cores).
func RunFig10(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 21
	}
	t := &Table{
		Title:   "Fig 10: Software partitioning operator performance (2x4B columns, 32 cores)",
		Headers: []string{"fanout", "tile", "Mrows/s", "GiB/s(in)"},
	}
	cols := mkCols(rows, 2)
	for _, fanout := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		for _, tile := range []int{64, 128, 256, 512} {
			ctx := qef.NewContext(qef.ModeDPU)
			// Stage: hardware 32-way split feeds the cores.
			base, err := ops.PartitionByHash(ctx, cols, []int{0}, ops.PartScheme{Rounds: []int{32}}, tile)
			if err != nil {
				t.AddRow(fmt.Sprintf("%d", fanout), fmt.Sprintf("%d", tile), "ERR", err.Error())
				continue
			}
			ctx.Reset() // isolate the software round
			if _, err := ops.SWPartitionRound(ctx, base, fanout, 5, tile); err != nil {
				t.AddRow(fmt.Sprintf("%d", fanout), fmt.Sprintf("%d", tile), "ERR", err.Error())
				continue
			}
			sec := ctx.SimElapsed()
			t.AddRow(fmt.Sprintf("%d", fanout), fmt.Sprintf("%d", tile),
				f1(float64(rows)/sec/1e6), f2(float64(rows)*8/sec/gib))
		}
	}
	t.AddNote("paper: ~948 Mrows/s at 32-way; feasible to 64-way without significant drop; larger tiles better; 7-7.6 GiB/s")
	return t
}

// RunFig11 regenerates Figure 11: join build kernel rate vs tile size and
// hash-buckets size.
func RunFig11(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 17
	}
	t := &Table{
		Title:   "Fig 11: Join build operator performance",
		Headers: []string{"tile", "buckets", "Mrows/s/core", "Brows/s/DPU"},
	}
	keys := make([]int64, rows)
	for i := range keys {
		keys[i] = int64(i)
	}
	kd := coltypes.FromInt64s(coltypes.W4, keys)
	hv := primitives.HashColumns(nil, []coltypes.Data{kd}, nil)
	for _, tile := range []int{64, 128, 256, 512, 1024} {
		for _, buckets := range []int{512, 1024, 2048, 4096, 8192} {
			soc := dpu.MustNew(dpu.DefaultConfig())
			core := soc.Core(0)
			ht := primitives.NewCompactHT(rows, buckets)
			ht.Build(core, hv, keys, nil, tile)
			sec := soc.Config().Seconds(core.Cycles())
			rate := float64(rows) / sec
			t.AddRow(fmt.Sprintf("%d", tile), fmt.Sprintf("%d", buckets),
				f1(rate/1e6), f2(32*rate/1e9))
		}
	}
	t.AddNote("paper: buckets size has no impact (DMEM single-cycle); tile 64->1024 gains ~39%%; ~46 Mrows/s/core at 256; ~1.5 Brows/s/DPU")
	return t
}

// RunFig12 regenerates Figure 12: join probe kernel rate at 50% hit ratio.
func RunFig12(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 17
	}
	t := &Table{
		Title:   "Fig 12: Join probe operator performance (hit ratio 50%)",
		Headers: []string{"tile", "buckets", "Mrows/s/core", "Brows/s/DPU"},
	}
	buildKeys := make([]int64, rows)
	for i := range buildKeys {
		buildKeys[i] = int64(i)
	}
	bkd := coltypes.FromInt64s(coltypes.W4, buildKeys)
	bhv := primitives.HashColumns(nil, []coltypes.Data{bkd}, nil)
	probeKeys := make([]int64, rows)
	for i := range probeKeys {
		probeKeys[i] = int64(i * 2) // half the probes miss
	}
	pkd := coltypes.FromInt64s(coltypes.W4, probeKeys)
	phv := primitives.HashColumns(nil, []coltypes.Data{pkd}, nil)
	for _, tile := range []int{64, 128, 256, 512, 1024} {
		for _, buckets := range []int{512, 1024, 2048, 4096, 8192} {
			soc := dpu.MustNew(dpu.DefaultConfig())
			core := soc.Core(0)
			ht := primitives.NewCompactHT(rows, buckets)
			ht.Build(nil, bhv, buildKeys, nil, tile)
			ht.Probe(core, phv, probeKeys, nil, tile, nil)
			sec := soc.Config().Seconds(core.Cycles())
			rate := float64(rows) / sec
			t.AddRow(fmt.Sprintf("%d", tile), fmt.Sprintf("%d", buckets),
				f1(rate/1e6), f2(32*rate/1e9))
		}
	}
	t.AddNote("paper: buckets size has no impact while DMEM-resident; tile 64->1024 gains up to ~30%%; 0.88-1.35 Brows/s/DPU")
	return t
}

// RunFig13 regenerates Figure 13: vectorization gain on the TPC-H Q3 join.
func RunFig13(rows int) *Table {
	if rows <= 0 {
		rows = 1 << 17
	}
	t := &Table{
		Title:   "Fig 13: Performance gain in join with vectorization (Q3 join kernel)",
		Headers: []string{"mode", "cycles/row", "branch misses/row", "elapsed (norm)"},
	}
	nb, np := rows/4, rows // orders : lineitem ~ 1:4 as in Q3
	buildKeys := make([]int64, nb)
	for i := range buildKeys {
		buildKeys[i] = int64(i)
	}
	probeKeys := make([]int64, np)
	for i := range probeKeys {
		probeKeys[i] = int64(i % (2 * nb)) // ~50% hit like Q3's date filters
	}
	bhv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, buildKeys)}, nil)
	phv := primitives.HashColumns(nil, []coltypes.Data{coltypes.FromInt64s(coltypes.W4, probeKeys)}, nil)

	run := func(scalar bool) (cycles float64, misses float64) {
		soc := dpu.MustNew(dpu.DefaultConfig())
		core := soc.Core(0)
		ht := primitives.NewCompactHT(nb, primitives.BucketsFor(nb))
		ht.Build(core, bhv, buildKeys, nil, 256)
		ht.Probe(core, phv, probeKeys, nil, 256, nil)
		if scalar {
			primitives.ChargeScalarDispatch(core, nb+np)
		}
		return float64(core.Cycles()), float64(core.BranchMisses())
	}
	vecCy, vecMiss := run(false)
	scCy, scMiss := run(true)
	n := float64(nb + np)
	t.AddRow("vectorized", f2(vecCy/n), f3(vecMiss/n), "1.00")
	t.AddRow("row-at-a-time", f2(scCy/n), f3(scMiss/n), f2(scCy/vecCy))
	t.AddNote("gain with vectorization: %.0f%% (paper: ~46%%); branch misses drop from %.3f to %.3f per row",
		(scCy/vecCy-1)*100, scMiss/n, vecMiss/n)
	return t
}

// RunFig4 regenerates the task-formation example of Figure 4: grouping
// scan+filter+aggregate into one task minimizes DRAM materialization.
func RunFig4() *Table {
	t := &Table{
		Title:   "Fig 4: Task formation example (1M rows, 4B columns, 25% selectivity)",
		Headers: []string{"formation", "tasks", "tile rows", "materialized bytes", "modeled cost"},
	}
	mk := func() []qcomp.OpReq {
		return []qcomp.OpReq{
			{Name: "scan", DMEMSize: func(r int) int { return 2 * r * 8 }, OutBytesPerRow: 8, Selectivity: 1},
			{Name: "filter", DMEMSize: (&ops.FilterOp{}).DMEMSize, OutBytesPerRow: 8, Selectivity: 0.25},
			{Name: "aggregate", DMEMSize: func(r int) int { return r*8 + 64 }, OutBytesPerRow: 16, Selectivity: 1e-6},
		}
	}
	best, err := qcomp.FormTasks(mk(), 1_000_000)
	if err != nil {
		t.AddNote("error: %v", err)
		return t
	}
	t.AddRow("chosen (grouped)", fmt.Sprintf("%d", len(best.Tasks)),
		fmt.Sprintf("%d", best.Tasks[0].TileRows),
		fmt.Sprintf("%d", best.MaterializedBytes), f3(best.Cost*1e3)+" ms")
	t.AddNote("DMEM budget per core: %d bytes; the grouped formation pipelines all operators through DMEM and materializes only the final aggregate", mem.DMEMSize)
	return t
}
