package bench

import "testing"

// TestCacheSpeedupFloor is the ISSUE acceptance bar for the query cache: on
// SF 0.05 TPC-H, re-issuing Q1/Q6 against a warm cache must hit every time,
// cut the p50 wall latency by at least 5x versus the producing run, and
// bill zero marginal energy on the warm hits.
func TestCacheSpeedupFloor(t *testing.T) {
	db, err := SetupTPCHCached(0.05)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const warm = 32
	runs, err := RunCache(db, []string{"Q1", "Q6"}, warm)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Hits != r.WarmRuns {
			t.Errorf("%s: %d/%d warm runs hit, want all", r.Query, r.Hits, r.WarmRuns)
		}
		if s := r.P50Speedup(); s < 5 {
			t.Errorf("%s: warm p50 speedup = %.1fx (cold %dns vs p50 %dns), want >= 5x",
				r.Query, s, r.ColdNs, r.WarmP50Ns)
		}
		if r.WarmEnergyNJ != 0 {
			t.Errorf("%s: warm hits billed %d nJ marginal energy, want 0", r.Query, r.WarmEnergyNJ)
		}
		if r.SavedNJ != r.ColdEnergyNJ*int64(r.Hits) {
			t.Errorf("%s: saved %d nJ across %d hits, want %d (producing cost x hits)",
				r.Query, r.SavedNJ, r.Hits, r.ColdEnergyNJ*int64(r.Hits))
		}
	}
	tbl := RunCacheTable(runs, warm)
	if len(tbl.Rows) != len(runs) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(runs))
	}
	t.Logf("\n%s", tbl)
}
