package bench

import (
	"fmt"

	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// Tray scaling experiment (paper §7.4: the SF1000 configuration shards the
// workload over 8 servers). Each node count gets a fresh tray over the same
// host database; every query runs in ModeDPU so the figure of merit is the
// modeled distributed makespan — slowest node + interconnect + coordinator
// — and the activity+link+idle energy it costs.

// ScalingRun is one (query, node-count) cell of the scaling experiment.
type ScalingRun struct {
	Query      string
	Nodes      int
	SimSeconds float64
	EnergyJ    float64
	NetBytes   int64
	NetSeconds float64
	Rows       int
}

// RunScaling executes the named TPC-H queries on trays of each node count.
func RunScaling(db *hostdb.Database, nodeCounts []int, queries []string) ([]ScalingRun, error) {
	var runs []ScalingRun
	for _, n := range nodeCounts {
		tray, err := cluster.New(db, cluster.Config{Nodes: n})
		if err != nil {
			return nil, err
		}
		for _, name := range tpch.TableNames() {
			if err := tray.Load(name, nil); err != nil {
				tray.Close()
				return nil, fmt.Errorf("load %s on %d nodes: %w", name, n, err)
			}
		}
		for _, qname := range queries {
			q, ok := tpch.QueryByName(qname)
			if !ok {
				tray.Close()
				return nil, fmt.Errorf("unknown query %s", qname)
			}
			res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeDPU})
			if err != nil {
				tray.Close()
				return nil, fmt.Errorf("%s on %d nodes: %w", qname, n, err)
			}
			runs = append(runs, ScalingRun{
				Query:      qname,
				Nodes:      n,
				SimSeconds: res.SimSeconds,
				EnergyJ:    res.Energy.TotalJoules(),
				NetBytes:   res.NetBytes,
				NetSeconds: res.NetSeconds,
				Rows:       res.Rel.Rows(),
			})
		}
		tray.Close()
	}
	return runs, nil
}

// ScalingSpeedup returns sim(1 node)/sim(n nodes) for one query, 0 when the
// baseline is missing.
func ScalingSpeedup(runs []ScalingRun, query string, nodes int) float64 {
	var base, at float64
	for _, r := range runs {
		if r.Query != query {
			continue
		}
		switch r.Nodes {
		case 1:
			base = r.SimSeconds
		case nodes:
			at = r.SimSeconds
		}
	}
	if base == 0 || at == 0 {
		return 0
	}
	return base / at
}

// RunScalingTable renders the tray scaling experiment: simulated-throughput
// speedup and energy versus the single-node tray, per query and node count.
func RunScalingTable(runs []ScalingRun) *Table {
	t := &Table{
		Title:   "Tray scaling: sharded TPC-H over N SoC nodes (ModeDPU, modeled makespan)",
		Headers: []string{"query", "nodes", "sim ms", "speedup", "net KB", "net ms", "energy mJ", "perf/W vs 1 node"},
	}
	base := map[string]ScalingRun{}
	for _, r := range runs {
		if r.Nodes == 1 {
			base[r.Query] = r
		}
	}
	for _, r := range runs {
		b, ok := base[r.Query]
		speedup, ppw := 0.0, 0.0
		if ok && r.SimSeconds > 0 && r.EnergyJ > 0 {
			speedup = b.SimSeconds / r.SimSeconds
			// Work per joule, normalized to the 1-node tray: an N-node tray
			// only wins the perf/watt race when its speedup outruns the
			// extra idle floors and link energy it pays for.
			ppw = speedup * b.EnergyJ / r.EnergyJ
		}
		t.AddRow(r.Query, fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.3f", r.SimSeconds*1e3),
			f2(speedup),
			fmt.Sprintf("%.1f", float64(r.NetBytes)/1024),
			fmt.Sprintf("%.3f", r.NetSeconds*1e3),
			fmt.Sprintf("%.3f", r.EnergyJ*1e3),
			f2(ppw))
	}
	t.AddNote("speedup = 1-node sim / N-node sim; perf/W normalizes work-per-joule to the 1-node tray")
	t.AddNote("net = exchange traffic over the modeled interconnect (%s)", "10GbE-class: 1.25 GB/s, 4 us/tile")
	return t
}
