package bench

import (
	"testing"

	"rapid/internal/coltypes"
	"rapid/internal/ops"
	"rapid/internal/primitives"
	"rapid/internal/qef"
)

// tileLoopRelation builds a 3-column relation for the canonical
// filter→materialize→project→sink tile loop.
func tileLoopRelation(rows int) *ops.Relation {
	cols := make([]coltypes.Data, 3)
	for c := range cols {
		d := coltypes.New(coltypes.W4, rows)
		for i := 0; i < rows; i++ {
			d.Set(i, int64((i*2654435761+c)%1000))
		}
		cols[c] = d
	}
	return MustBenchRelation(cols)
}

func tileLoopChain(sink qef.Operator) func() qef.Operator {
	return func() qef.Operator {
		return &ops.FilterOp{
			Preds: []ops.Predicate{&ops.ConstCmp{Col: 0, Op: primitives.LT, Val: 500, Sel: 0.5}},
			Next: &ops.MaterializeOp{
				RowBytes: 3 * 4, // three W4 input columns
				Next: &ops.ProjectOp{
					Exprs: []ops.Expr{&ops.BinExpr{Op: ops.OpMul, L: &ops.ColRef{Idx: 1}, R: &ops.ConstExpr{Val: 3}}},
					Keep:  []int{0},
					Next:  sink,
				},
			},
		}
	}
}

func benchTileLoop(b *testing.B, mode qef.Mode) {
	rel := tileLoopRelation(1 << 18)
	ctx := qef.NewContext(mode)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &ops.CountSink{}
		if err := ops.RelationScan(ctx, rel, 256, tileLoopChain(sink)); err != nil {
			b.Fatal(err)
		}
		if sink.Rows() == 0 {
			b.Fatal("no rows")
		}
	}
	b.SetBytes(int64(rel.Rows()) * 12)
}

// BenchmarkTileLoopX86 measures the steady-state tile loop natively.
func BenchmarkTileLoopX86(b *testing.B) { benchTileLoop(b, qef.ModeX86) }

// BenchmarkTileLoopDPU measures the same loop under full DPU accounting.
func BenchmarkTileLoopDPU(b *testing.B) { benchTileLoop(b, qef.ModeDPU) }
