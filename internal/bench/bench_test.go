package bench

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"rapid/internal/hostdb"
)

// The bench tests assert the paper's qualitative *shapes*, not absolute
// numbers: who wins, roughly by how much, where the knees are. See
// EXPERIMENTS.md for paper-vs-measured values.

func cellF(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

func TestFig8Shape(t *testing.T) {
	tbl := RunFig8(1 << 20)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		bw := cellF(t, tbl, i, 1)
		if bw < 8.8 || bw > 10.0 {
			t.Fatalf("%s: %.2f GiB/s, want ~9.3", tbl.Rows[i][0], bw)
		}
	}
	if !strings.Contains(tbl.String(), "radix") {
		t.Fatal("render")
	}
}

func TestFig9Shape(t *testing.T) {
	tbl := RunFig9()
	byKey := map[string]float64{}
	for i, r := range tbl.Rows {
		byKey[r[0]+"/"+r[1]+"/"+r[2]] = cellF(t, tbl, i, 3)
	}
	// >= 9 GiB/s at 4 cols, 128-row tiles, read.
	if byKey["4/128/r"] < 9.0 {
		t.Fatalf("4/128/r = %.2f", byKey["4/128/r"])
	}
	// 64-row tiles slower than 128.
	if byKey["4/64/r"] >= byKey["4/128/r"] {
		t.Fatal("tile-size shape broken")
	}
	// Slight decay with more columns.
	if byKey["32/128/r"] >= byKey["2/128/r"] {
		t.Fatal("column-count shape broken")
	}
	if byKey["32/128/r"] < 0.8*byKey["2/128/r"] {
		t.Fatal("column decay too steep to be 'slight'")
	}
}

func TestFilterMicroShape(t *testing.T) {
	tbl := RunFilterMicro(1 << 20)
	cpr := cellF(t, tbl, 0, 1)
	if cpr < 1.55 || cpr > 1.75 {
		t.Fatalf("cycles/tuple = %.3f, want ~1.65", cpr)
	}
	rate := cellF(t, tbl, 1, 1)
	if rate < 455 || rate > 520 {
		t.Fatalf("rate = %.1f Mtuples/s, want ~482", rate)
	}
}

func TestFig10Shape(t *testing.T) {
	tbl := RunFig10(1 << 19)
	get := func(fanout, tile string) float64 {
		for i, r := range tbl.Rows {
			if r[0] == fanout && r[1] == tile {
				return cellF(t, tbl, i, 2)
			}
		}
		t.Fatalf("no row %s/%s", fanout, tile)
		return 0
	}
	r32 := get("32", "256")
	// ~948 Mrows/s at 32-way in the paper; accept the band 600-1400.
	if r32 < 600 || r32 > 1400 {
		t.Fatalf("32-way rate = %.0f Mrows/s, want ~948", r32)
	}
	// Flat to 64-way ("without significant performance drop").
	if r64 := get("64", "256"); r64 < 0.65*r32 {
		t.Fatalf("64-way dropped too much: %.0f vs %.0f", r64, r32)
	}
	// 256-way clearly degrades.
	if r256 := get("256", "256"); r256 >= 0.9*r32 {
		t.Fatalf("256-way should degrade: %.0f vs %.0f", r256, r32)
	}
	// Larger tiles help where DMEM headroom allows them (low fan-out);
	// at high fan-out the operator clamps the tile to fit the scratchpad.
	if get("4", "512") <= get("4", "64") {
		t.Fatal("larger tiles should help at low fan-out")
	}
	if get("128", "512") < get("128", "64") {
		t.Fatal("larger tiles must never hurt (clamped to DMEM)")
	}
}

func TestFig11Shape(t *testing.T) {
	tbl := RunFig11(1 << 16)
	get := func(tile, buckets string) float64 {
		for i, r := range tbl.Rows {
			if r[0] == tile && r[1] == buckets {
				return cellF(t, tbl, i, 2)
			}
		}
		t.Fatal("missing row")
		return 0
	}
	// Buckets size has no impact.
	if b1, b2 := get("256", "512"), get("256", "8192"); b1 != b2 {
		t.Fatalf("buckets impact: %.1f vs %.1f", b1, b2)
	}
	// ~46 Mrows/s/core at 256-row tiles.
	if r := get("256", "2048"); r < 42 || r > 52 {
		t.Fatalf("256-tile build = %.1f Mrows/s/core, want ~46", r)
	}
	// Tile 64 -> 1024 gains ~39%.
	gain := get("1024", "2048")/get("64", "2048") - 1
	if gain < 0.30 || gain > 0.50 {
		t.Fatalf("tile gain = %.0f%%, want ~39%%", gain*100)
	}
}

func TestFig12Shape(t *testing.T) {
	tbl := RunFig12(1 << 16)
	var minDPU, maxDPU = 1e18, 0.0
	for i, r := range tbl.Rows {
		_ = r
		v := cellF(t, tbl, i, 3)
		if v < minDPU {
			minDPU = v
		}
		if v > maxDPU {
			maxDPU = v
		}
	}
	// Paper: 0.88-1.35 Brows/s per DPU across the sweep.
	if minDPU < 0.75 || maxDPU > 1.6 {
		t.Fatalf("probe range %.2f-%.2f Brows/s, want ~0.88-1.35", minDPU, maxDPU)
	}
	if maxDPU/minDPU < 1.15 {
		t.Fatal("tile size should matter")
	}
}

func TestFig13Shape(t *testing.T) {
	tbl := RunFig13(1 << 16)
	slowdown := cellF(t, tbl, 1, 3)
	if slowdown < 1.35 || slowdown > 1.60 {
		t.Fatalf("row-at-a-time = %.2fx vectorized, want ~1.46", slowdown)
	}
	// Branch misses must drop with vectorization.
	if cellF(t, tbl, 0, 2) >= cellF(t, tbl, 1, 2) {
		t.Fatal("vectorized execution must have fewer branch misses")
	}
}

func TestFig4Shape(t *testing.T) {
	tbl := RunFig4()
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "1" {
		t.Fatalf("chosen formation has %s tasks, want 1", tbl.Rows[0][1])
	}
}

var (
	tpchOnce sync.Once
	tpchDB   *hostdb.Database
	tpchRuns []QueryRun
	tpchErr  error
)

func sharedRuns(t *testing.T) []QueryRun {
	t.Helper()
	tpchOnce.Do(func() {
		tpchDB, tpchErr = SetupTPCH(0.003)
		if tpchErr != nil {
			return
		}
		tpchRuns, tpchErr = RunQueries(tpchDB, 1)
	})
	if tpchErr != nil {
		t.Fatal(tpchErr)
	}
	return tpchRuns
}

func TestFig16Shape(t *testing.T) {
	runs := sharedRuns(t)
	tbl := RunFig16(runs)
	if len(tbl.Rows) != len(runs) {
		t.Fatal("row count")
	}
	// The vectorized columnar engine must beat the Volcano row engine on
	// average (the paper's software-only claim).
	var sum float64
	wins := 0
	for _, r := range runs {
		sum += r.SWSpeedup()
		if r.SWSpeedup() > 1 {
			wins++
		}
	}
	avg := sum / float64(len(runs))
	if avg <= 1.2 {
		t.Fatalf("average software speedup = %.2f, expected > 1.2", avg)
	}
	if wins < len(runs)*2/3 {
		t.Fatalf("RAPID software wins only %d of %d queries", wins, len(runs))
	}
}

func TestFig15Shape(t *testing.T) {
	runs := sharedRuns(t)
	tbl := RunFig15(runs)
	if len(tbl.Rows) != len(runs) {
		t.Fatal("row count")
	}
	var sum float64
	for _, r := range runs {
		sum += r.RapidFrac
	}
	avg := sum / float64(len(runs))
	// Paper: 97.57% average. At tiny scale factors the fixed parse/plan
	// cost weighs more, so accept > 60%.
	if avg < 0.60 {
		t.Fatalf("average RAPID fraction = %.2f", avg)
	}
}

func TestFig14Shape(t *testing.T) {
	runs := sharedRuns(t)
	tbl := RunFig14(runs)
	if len(tbl.Rows) != len(runs) {
		t.Fatal("row count")
	}
	var sum float64
	for _, r := range runs {
		ratio := r.PerfPerWatt()
		if ratio <= 1 {
			t.Fatalf("%s: perf/watt ratio %.2f <= 1 — RAPID must win on perf/watt", r.Name, ratio)
		}
		sum += ratio
	}
	avg := sum / float64(len(runs))
	// Paper: 10-25x, avg ~15x. Model + measurement noise: accept 4-80x.
	if avg < 4 || avg > 80 {
		t.Fatalf("average perf/watt = %.1fx, out of plausible band", avg)
	}
}
