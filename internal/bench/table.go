// Package bench contains one runner per table and figure of the paper's
// evaluation section (§7). Each runner regenerates the experiment on the
// simulated DPU (micro-benchmarks) or over the TPC-H workload (system
// benchmarks) and reports the same rows/series the paper plots, alongside
// the paper's reference values where applicable. cmd/rapid-bench prints
// them all.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a caption note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

const gib = 1 << 30
