package bench

import "testing"

// TestQ6PruningFloor is the ISSUE acceptance bar for zone-map pruning: on a
// shipdate-clustered SF 0.05 lineitem, Q6's one-year shipdate range must
// prune at least half of all scannable tiles, bill strictly fewer cycles
// than the force-disabled run, and return the identical answer (checked
// inside RunPruning).
func TestQ6PruningFloor(t *testing.T) {
	db, err := SetupTPCHClustered(0.05)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	runs, err := RunPruning(db, []string{"Q6"})
	if err != nil {
		t.Fatal(err)
	}
	r := runs[0]
	if r.TilesTotal == 0 {
		t.Fatal("Q6 profile reported no scannable tiles")
	}
	if rate := r.SkipRate(); rate < 0.5 {
		t.Fatalf("Q6 skip rate = %.1f%% (%d/%d tiles), want >= 50%%",
			100*rate, r.TilesPruned, r.TilesTotal)
	}
	if r.CyclesOn >= r.CyclesOff {
		t.Fatalf("pruned run billed %d cycles, unpruned %d — skipped tiles are not free",
			r.CyclesOn, r.CyclesOff)
	}
	tbl := RunPruningTable(runs)
	if len(tbl.Rows) != len(runs) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(runs))
	}
	t.Logf("\n%s", tbl)
}
