package bench

import (
	"fmt"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

// SetupTPCH builds a host database with the TPC-H workload loaded into
// RAPID replicas.
func SetupTPCH(sf float64) (*hostdb.Database, error) {
	db := hostdb.New()
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: sf, Seed: 2018}); err != nil {
		return nil, err
	}
	return db, nil
}

// QueryRun is the measured execution of one TPC-H query on every engine.
type QueryRun struct {
	Name      string
	HostWall  time.Duration // System X Volcano engine, wall clock
	RapidWall time.Duration // RAPID software on this machine, wall clock
	SimDPUSec float64       // RAPID on the simulated DPU
	// Model-currency figures (see EXPERIMENTS.md): the same RAPID software
	// run modeled on a dual-socket x86, derived from the work counters.
	X86ModelSec float64
	RapidFrac   float64 // share of elapsed time inside RAPID (Fig 15)
	Rows        int
	// EnergyJ is the activity-model energy of the simulated DPU run
	// (dpCore cycles + DMS bytes + idle floor), always <= the provisioned
	// envelope Watts x SimDPUSec.
	EnergyJ float64
}

// SWSpeedup is the Fig 16 metric: System X wall / RAPID software wall.
func (q QueryRun) SWSpeedup() float64 {
	if q.RapidWall <= 0 {
		return 0
	}
	return float64(q.HostWall) / float64(q.RapidWall)
}

// ChipSpeedRatio is the per-chip speed of one DPU against the dual-socket
// server running System X, in model currency: (System X time) / (DPU
// time), where System X time = measured software speedup x the modeled
// x86 execution of the same RAPID software. The paper's numbers imply
// ~0.3x on average (one 5.8 W chip at a third of a 290 W server's speed).
func (q QueryRun) ChipSpeedRatio() float64 {
	if q.SimDPUSec <= 0 {
		return 0
	}
	return q.SWSpeedup() * q.X86ModelSec / q.SimDPUSec
}

// PerfPerWatt is the Fig 14 metric: the per-chip speed ratio times the
// provisioned chip power ratio (~50x). The paper's average: 0.3 x 50 ~ 15x.
func (q QueryRun) PerfPerWatt() float64 {
	return q.ChipSpeedRatio() * power.ChipPowerRatio()
}

// ActivityPerfPerWatt recomputes Fig 14 with the DPU side charged its
// activity-model energy instead of the provisioned 5.8 W: the chip speed
// ratio times server watts over the DPU's average activity power
// (EnergyJ / SimDPUSec). Activity power never exceeds provisioned power,
// so this is always >= PerfPerWatt — the provisioned figure is the
// recoverable lower bound.
func (q QueryRun) ActivityPerfPerWatt() float64 {
	if q.EnergyJ <= 0 || q.SimDPUSec <= 0 {
		return 0
	}
	return q.ChipSpeedRatio() * power.SystemXServer().Watts * q.SimDPUSec / q.EnergyJ
}

// ClusterSpeedup is §7.4's "RAPID on RAPID hardware runs 8.5X faster than
// System X": the 28-DPU node against one server.
func (q QueryRun) ClusterSpeedup() float64 {
	return q.ChipSpeedRatio() * power.RapidNodeDPUs
}

// RunQueries executes every benchmark query on all three engines.
func RunQueries(db *hostdb.Database, reps int) ([]QueryRun, error) {
	if reps < 1 {
		reps = 1
	}
	var out []QueryRun
	for _, q := range tpch.Queries() {
		run := QueryRun{Name: q.Name}
		// System X (Volcano row engine).
		host, err := bestOf(reps, func() (*hostdb.QueryResult, error) {
			return db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
		})
		if err != nil {
			return nil, fmt.Errorf("%s host: %w", q.Name, err)
		}
		run.HostWall = host.wall
		run.Rows = host.res.Rel.Rows()
		// RAPID software on this machine.
		rapidSW, err := bestOf(reps, func() (*hostdb.QueryResult, error) {
			return db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
		})
		if err != nil {
			return nil, fmt.Errorf("%s rapid-sw: %w", q.Name, err)
		}
		run.RapidWall = rapidSW.res.RapidWall
		run.RapidFrac = rapidSW.res.RapidFraction()
		// RAPID on the simulated DPU; the work counters also give the x86
		// model figure.
		dpuRes, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU})
		if err != nil {
			return nil, fmt.Errorf("%s rapid-dpu: %w", q.Name, err)
		}
		run.SimDPUSec = dpuRes.RapidSimSeconds
		run.X86ModelSec = dpuRes.X86ModelSeconds
		if dpuRes.HasEnergy {
			run.EnergyJ = dpuRes.Energy.TotalJoules()
		}
		out = append(out, run)
	}
	return out, nil
}

type timedResult struct {
	res  *hostdb.QueryResult
	wall time.Duration
}

func bestOf(reps int, fn func() (*hostdb.QueryResult, error)) (timedResult, error) {
	best := timedResult{wall: time.Hour}
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := fn()
		wall := time.Since(start)
		if err != nil {
			return timedResult{}, err
		}
		if wall < best.wall {
			best = timedResult{res: res, wall: wall}
		}
	}
	return best, nil
}

// RunFig16 regenerates Figure 16: RAPID software vs System X on x86.
func RunFig16(runs []QueryRun) *Table {
	t := &Table{
		Title:   "Fig 16: RAPID software vs System X on x86 (wall clock, this machine)",
		Headers: []string{"query", "SystemX ms", "RAPID-sw ms", "speedup"},
	}
	var sum float64
	for _, r := range runs {
		t.AddRow(r.Name, f2(float64(r.HostWall)/1e6), f2(float64(r.RapidWall)/1e6), f2(r.SWSpeedup()))
		sum += r.SWSpeedup()
	}
	t.AddNote("average software speedup: %.2fx (paper: 1.2x-8.5x, avg 2.5x)", sum/float64(len(runs)))
	return t
}

// RunFig15 regenerates Figure 15: elapsed-time share inside RAPID.
func RunFig15(runs []QueryRun) *Table {
	t := &Table{
		Title:   "Fig 15: Elapsed time percentage in RAPID vs host database",
		Headers: []string{"query", "RAPID %", "host %"},
	}
	var sum float64
	for _, r := range runs {
		t.AddRow(r.Name, f1(100*r.RapidFrac), f1(100*(1-r.RapidFrac)))
		sum += r.RapidFrac
	}
	t.AddNote("average RAPID share: %.2f%% (paper: 97.57%%)", 100*sum/float64(len(runs)))
	return t
}

// RunFig14 regenerates Figure 14: performance per watt, RAPID DPU vs
// System X on x86.
func RunFig14(runs []QueryRun) *Table {
	t := &Table{
		Title:   "Fig 14: Performance per watt, RAPID vs x86",
		Headers: []string{"query", "sw speedup", "chip speed (DPU/server)", "perf/watt ratio", "perf/watt (activity)", "node speedup (28 DPUs)"},
	}
	var sum, sumAct, sumCluster float64
	for _, r := range runs {
		t.AddRow(r.Name, f2(r.SWSpeedup()), f3(r.ChipSpeedRatio()), f1(r.PerfPerWatt()), f1(r.ActivityPerfPerWatt()), f1(r.ClusterSpeedup()))
		sum += r.PerfPerWatt()
		sumAct += r.ActivityPerfPerWatt()
		sumCluster += r.ClusterSpeedup()
	}
	n := float64(len(runs))
	t.AddNote("average perf/watt ratio: %.1fx (paper: 10x-25x, avg ~15x); average node speedup: %.1fx (paper: 8.5x)", sum/n, sumCluster/n)
	t.AddNote("method: perf/watt = measured software speedup (Fig 16) x modeled x86-vs-DPU execution x chip power ratio (%s %.0fW vs %s %.1fW)",
		power.SystemXServer().Name, power.SystemXServer().Watts, power.DPU().Name, power.DPU().Watts)
	t.AddNote("activity column charges the DPU its modeled energy (avg %.1fx); provisioned power bounds activity power, so it is always >= the provisioned ratio", sumAct/n)
	return t
}
