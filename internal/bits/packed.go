package bits

import (
	"fmt"
	"math/bits"
)

// PackedArray is a fixed-capacity array of unsigned integers stored with a
// fixed bit width per element. The RAPID hash-join kernel (paper §6.3) keeps
// its hash-buckets and link arrays at exactly ceil(log2 N) bits per element
// so that N-row partitions fit in the 32 KiB DMEM; this type is that storage.
//
// Width 0 is permitted for the degenerate single-element case (log2 1 = 0):
// every element then reads back as 0.
type PackedArray struct {
	words []uint64
	width uint // bits per element, 0..64
	n     int  // number of elements
}

// NewPackedArray returns a zeroed packed array of n elements of the given
// bit width.
func NewPackedArray(n int, width uint) *PackedArray {
	if n < 0 {
		panic("bits: negative packed array length")
	}
	if width > 64 {
		panic("bits: packed array width > 64")
	}
	totalBits := uint64(n) * uint64(width)
	return &PackedArray{
		words: make([]uint64, (totalBits+wordBits-1)/wordBits),
		width: width,
		n:     n,
	}
}

// WidthFor returns the minimal element width able to hold values 0..n-1,
// i.e. ceil(log2 n). WidthFor(0) and WidthFor(1) return 0.
func WidthFor(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(n - 1)))
}

// Len returns the number of elements.
func (p *PackedArray) Len() int { return p.n }

// Width returns the per-element width in bits.
func (p *PackedArray) Width() uint { return p.width }

// MaxValue returns the largest storable value (2^width - 1).
func (p *PackedArray) MaxValue() uint64 {
	if p.width == 64 {
		return ^uint64(0)
	}
	return (1 << p.width) - 1
}

// Get returns element i.
func (p *PackedArray) Get(i int) uint64 {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bits: packed index %d out of range [0,%d)", i, p.n))
	}
	if p.width == 0 {
		return 0
	}
	bitPos := uint64(i) * uint64(p.width)
	wi, off := bitPos/wordBits, uint(bitPos%wordBits)
	v := p.words[wi] >> off
	if off+p.width > wordBits {
		v |= p.words[wi+1] << (wordBits - off)
	}
	if p.width == 64 {
		return v
	}
	return v & ((1 << p.width) - 1)
}

// Set stores v into element i. v must fit in the element width.
func (p *PackedArray) Set(i int, v uint64) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bits: packed index %d out of range [0,%d)", i, p.n))
	}
	if p.width == 0 {
		if v != 0 {
			panic("bits: value does not fit zero-width element")
		}
		return
	}
	if p.width < 64 && v >= 1<<p.width {
		panic(fmt.Sprintf("bits: value %d does not fit in %d bits", v, p.width))
	}
	bitPos := uint64(i) * uint64(p.width)
	wi, off := bitPos/wordBits, uint(bitPos%wordBits)
	mask := p.MaxValue()
	p.words[wi] = p.words[wi]&^(mask<<off) | v<<off
	if off+p.width > wordBits {
		spill := wordBits - off
		p.words[wi+1] = p.words[wi+1]&^(mask>>spill) | v>>spill
	}
}

// Fill sets every element to v.
func (p *PackedArray) Fill(v uint64) {
	for i := 0; i < p.n; i++ {
		p.Set(i, v)
	}
}

// Reset zeroes the array.
func (p *PackedArray) Reset() {
	for i := range p.words {
		p.words[i] = 0
	}
}

// SizeBytes returns the storage footprint in bytes. This is the quantity the
// join kernel budgets against DMEM capacity.
func (p *PackedArray) SizeBytes() int { return len(p.words) * 8 }

// PackedSizeBytes returns the footprint of an n-element array of the given
// width without allocating it.
func PackedSizeBytes(n int, width uint) int {
	totalBits := uint64(n) * uint64(width)
	return int((totalBits + wordBits - 1) / wordBits * 8)
}
