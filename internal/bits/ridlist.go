package bits

// RID is a 32-bit row-offset identifier. The filter operator emits RID lists
// instead of bit-vectors when fewer than 1/32 of the input rows qualify
// (paper §5.4): below that density a 32-bit RID per row is smaller than one
// bit per input row.
type RID = uint32

// RIDList is an ordered list of qualifying row offsets.
type RIDList struct {
	rids []RID
}

// NewRIDList returns a RID list with the given capacity hint.
func NewRIDList(capacity int) *RIDList {
	return &RIDList{rids: make([]RID, 0, capacity)}
}

// RIDListFrom wraps an existing slice.
func RIDListFrom(rids []RID) *RIDList { return &RIDList{rids: rids} }

// Append adds a row offset.
func (l *RIDList) Append(r RID) { l.rids = append(l.rids, r) }

// Len returns the number of RIDs.
func (l *RIDList) Len() int { return len(l.rids) }

// At returns the i-th RID.
func (l *RIDList) At(i int) RID { return l.rids[i] }

// Slice exposes the underlying storage.
func (l *RIDList) Slice() []RID { return l.rids }

// Reset truncates the list, retaining capacity.
func (l *RIDList) Reset() { l.rids = l.rids[:0] }

// SizeBytes returns the DMEM footprint.
func (l *RIDList) SizeBytes() int { return len(l.rids) * 4 }

// ToVector materializes the list as a bit-vector of n bits.
func (l *RIDList) ToVector(n int) *Vector {
	v := NewVector(n)
	for _, r := range l.rids {
		v.Set(int(r))
	}
	return v
}

// ChooseRIDs implements the representation decision of paper §5.4: RID lists
// win when the expected number of qualifying rows is below 1/32 of the input
// (a RID costs 32 bits; a bit-vector costs 1 bit per input row).
func ChooseRIDs(expectedHits, inputRows int) bool {
	if inputRows <= 0 {
		return false
	}
	return expectedHits*32 < inputRows
}
