package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorSetTestClear(t *testing.T) {
	v := NewVector(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Test(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	v.Clear(64)
	if v.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := v.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestVectorSetAllMasksTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		v := NewVector(n)
		v.SetAll()
		if got := v.Count(); got != n {
			t.Fatalf("n=%d: Count after SetAll = %d", n, got)
		}
		v.Not(v.Clone()) // complement of all-ones must be empty
		if got := v.Count(); got != 0 {
			t.Fatalf("n=%d: Count after Not(all-ones) = %d", n, got)
		}
	}
}

func TestVectorBooleanOps(t *testing.T) {
	const n = 200
	a, b := NewVector(n), NewVector(n)
	for i := 0; i < n; i += 2 {
		a.Set(i)
	}
	for i := 0; i < n; i += 3 {
		b.Set(i)
	}
	and, or, andNot := NewVector(n), NewVector(n), NewVector(n)
	and.And(a, b)
	or.Or(a, b)
	andNot.AndNot(a, b)
	for i := 0; i < n; i++ {
		ea, eb := i%2 == 0, i%3 == 0
		if and.Test(i) != (ea && eb) {
			t.Fatalf("And bit %d wrong", i)
		}
		if or.Test(i) != (ea || eb) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if andNot.Test(i) != (ea && !eb) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
	}
}

func TestVectorNextSet(t *testing.T) {
	v := NewVector(300)
	set := []int{5, 63, 64, 199, 299}
	for _, i := range set {
		v.Set(i)
	}
	got := []int{}
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(set) {
		t.Fatalf("NextSet walk found %v, want %v", got, set)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("NextSet walk found %v, want %v", got, set)
		}
	}
	if v.NextSet(300) != -1 {
		t.Fatal("NextSet past end should be -1")
	}
}

func TestVectorForEachMatchesRIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewVector(777)
	want := []uint32{}
	for i := 0; i < 777; i++ {
		if rng.Intn(4) == 0 {
			v.Set(i)
			want = append(want, uint32(i))
		}
	}
	got := v.ToRIDs(nil)
	if len(got) != len(want) {
		t.Fatalf("ToRIDs len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ToRIDs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	rt := NewVector(777)
	rt.FromRIDs(got)
	for i := 0; i < 777; i++ {
		if rt.Test(i) != v.Test(i) {
			t.Fatalf("round-trip bit %d differs", i)
		}
	}
}

// Property: Count equals the number of indices reported by ForEach, and
// De Morgan holds for random vectors.
func TestVectorProperties(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		count := 0
		a.ForEach(func(int) { count++ })
		if count != a.Count() {
			return false
		}
		// De Morgan: NOT(a AND b) == NOT a OR NOT b
		lhs, rhs, na, nb := NewVector(n), NewVector(n), NewVector(n), NewVector(n)
		lhs.And(a, b)
		lhs.Not(lhs.Clone())
		na.Not(a)
		nb.Not(b)
		rhs.Or(na, nb)
		for i := 0; i < n; i++ {
			if lhs.Test(i) != rhs.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorString(t *testing.T) {
	v := NewVector(4)
	v.Set(1)
	v.Set(3)
	if got := v.String(); got != "0101" {
		t.Fatalf("String = %q, want 0101", got)
	}
}

func TestVectorSizeBytes(t *testing.T) {
	if got := VectorSizeBytes(64); got != 8 {
		t.Fatalf("VectorSizeBytes(64) = %d", got)
	}
	if got := VectorSizeBytes(65); got != 16 {
		t.Fatalf("VectorSizeBytes(65) = %d", got)
	}
	if got := NewVector(1024).SizeBytes(); got != 128 {
		t.Fatalf("SizeBytes(1024) = %d", got)
	}
}

func TestVectorPanics(t *testing.T) {
	v := NewVector(10)
	mustPanic(t, func() { v.Test(10) })
	mustPanic(t, func() { v.Set(-1) })
	mustPanic(t, func() { v.And(NewVector(5), NewVector(10)) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
