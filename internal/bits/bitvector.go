// Package bits provides the bit-level substrate of the RAPID engine:
// qualification bit-vectors, row-identifier (RID) lists and the
// ceil(log2 N)-bit packed integer arrays used by the compact hash-join
// kernel (paper §5.4, §6.3).
//
// On the DPU these structures are manipulated with single-cycle BVLD and
// FILT instructions; here the same operations are plain Go, while the DPU
// cost model (internal/dpu) charges cycles for them.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length bit-vector marking qualifying rows of a tile or
// vector. Bit i corresponds to row offset i.
type Vector struct {
	words []uint64
	n     int
}

const wordBits = 64

// NewVector returns a zeroed bit-vector of n bits.
func NewVector(n int) *Vector {
	if n < 0 {
		panic("bits: negative vector length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Reuse resizes v to n bits and clears it, growing the word storage only
// when n exceeds the current capacity. It lets pooled vectors be recycled
// across tiles without reallocating (the DPU reuses the same DMEM region).
func (v *Vector) Reuse(n int) {
	if n < 0 {
		panic("bits: negative vector length")
	}
	words := (n + wordBits - 1) / wordBits
	if words > cap(v.words) {
		v.words = make([]uint64, words)
	} else {
		v.words = v.words[:words]
	}
	v.n = n
	v.ClearAll()
}

// NewVectorAllSet returns a bit-vector of n bits with every bit set.
func NewVectorAllSet(n int) *Vector {
	v := NewVector(n)
	v.SetAll()
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the underlying word storage. The tail bits beyond Len are
// always zero.
func (v *Vector) Words() []uint64 { return v.words }

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.boundsCheck(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.boundsCheck(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (v *Vector) Test(i int) bool {
	v.boundsCheck(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (v *Vector) boundsCheck(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// maskTail zeroes the unused bits of the last word so that Count and
// iteration never see ghost rows.
func (v *Vector) maskTail() {
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits (qualifying rows).
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And stores the bitwise AND of a and b into v. All three must have the
// same length; v may alias a or b.
func (v *Vector) And(a, b *Vector) {
	v.checkSameLen(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or stores the bitwise OR of a and b into v.
func (v *Vector) Or(a, b *Vector) {
	v.checkSameLen(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// AndNot stores a AND NOT b into v.
func (v *Vector) AndNot(a, b *Vector) {
	v.checkSameLen(a, b)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// Not stores the complement of a into v.
func (v *Vector) Not(a *Vector) {
	if v.n != a.n {
		panic("bits: length mismatch")
	}
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.maskTail()
}

func (v *Vector) checkSameLen(a, b *Vector) {
	if v.n != a.n || v.n != b.n {
		panic("bits: length mismatch")
	}
}

// CopyFrom copies a into v. Lengths must match.
func (v *Vector) CopyFrom(a *Vector) {
	if v.n != a.n {
		panic("bits: length mismatch")
	}
	copy(v.words, a.words)
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := NewVector(v.n)
	copy(c.words, v.words)
	return c
}

// ForEach calls fn for every set bit, in increasing order.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 when
// there is none. This mirrors the BVLD gather scan of Listing 1.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ToRIDs appends the offsets of all set bits to dst and returns it.
func (v *Vector) ToRIDs(dst []uint32) []uint32 {
	v.ForEach(func(i int) { dst = append(dst, uint32(i)) })
	return dst
}

// FromRIDs clears v and sets the bit for every RID in rids.
func (v *Vector) FromRIDs(rids []uint32) {
	v.ClearAll()
	for _, r := range rids {
		v.Set(int(r))
	}
}

// String renders the vector as 0/1 characters, lowest index first. Intended
// for tests and debugging of small vectors.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// SizeBytes returns the DMEM footprint of the vector in bytes.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// VectorSizeBytes returns the DMEM footprint of an n-bit vector without
// allocating it. Used by operator DMEM sizing (op_dmem_size).
func VectorSizeBytes(n int) int { return ((n + wordBits - 1) / wordBits) * 8 }
