package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthFor(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{256, 8}, {257, 9}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := WidthFor(c.n); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPackedArrayBasic(t *testing.T) {
	p := NewPackedArray(100, 7)
	if p.Len() != 100 || p.Width() != 7 {
		t.Fatalf("Len/Width = %d/%d", p.Len(), p.Width())
	}
	if p.MaxValue() != 127 {
		t.Fatalf("MaxValue = %d", p.MaxValue())
	}
	for i := 0; i < 100; i++ {
		p.Set(i, uint64(i%128))
	}
	for i := 0; i < 100; i++ {
		if got := p.Get(i); got != uint64(i%128) {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i%128)
		}
	}
}

func TestPackedArrayCrossWordBoundary(t *testing.T) {
	// width 13 guarantees elements straddling 64-bit word boundaries.
	p := NewPackedArray(64, 13)
	vals := make([]uint64, 64)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 13))
		p.Set(i, vals[i])
	}
	for i, want := range vals {
		if got := p.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	// Overwrite in reverse order to check neighbours are not clobbered.
	for i := 63; i >= 0; i-- {
		vals[i] = uint64(rng.Intn(1 << 13))
		p.Set(i, vals[i])
	}
	for i, want := range vals {
		if got := p.Get(i); got != want {
			t.Fatalf("after overwrite Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPackedArrayWidth64(t *testing.T) {
	p := NewPackedArray(5, 64)
	p.Set(3, ^uint64(0))
	if got := p.Get(3); got != ^uint64(0) {
		t.Fatalf("Get = %x", got)
	}
	if p.Get(2) != 0 || p.Get(4) != 0 {
		t.Fatal("neighbours clobbered")
	}
}

func TestPackedArrayZeroWidth(t *testing.T) {
	p := NewPackedArray(10, 0)
	p.Set(5, 0)
	if p.Get(5) != 0 {
		t.Fatal("zero-width Get != 0")
	}
	mustPanic(t, func() { p.Set(5, 1) })
}

func TestPackedArrayFillReset(t *testing.T) {
	p := NewPackedArray(33, 5)
	p.Fill(31)
	for i := 0; i < 33; i++ {
		if p.Get(i) != 31 {
			t.Fatalf("Fill: Get(%d) = %d", i, p.Get(i))
		}
	}
	p.Reset()
	for i := 0; i < 33; i++ {
		if p.Get(i) != 0 {
			t.Fatalf("Reset: Get(%d) = %d", i, p.Get(i))
		}
	}
}

func TestPackedArrayPanics(t *testing.T) {
	p := NewPackedArray(4, 3)
	mustPanic(t, func() { p.Get(4) })
	mustPanic(t, func() { p.Set(-1, 0) })
	mustPanic(t, func() { p.Set(0, 8) }) // 8 needs 4 bits
	mustPanic(t, func() { NewPackedArray(1, 65) })
	mustPanic(t, func() { NewPackedArray(-1, 3) })
}

func TestPackedSizeBytes(t *testing.T) {
	// The paper's point: 4096 entries at 12 bits = 6 KiB, vs 32 KiB for
	// 64-bit pointers — the compact layout is what fits DMEM.
	if got := PackedSizeBytes(4096, 12); got != 6144 {
		t.Fatalf("PackedSizeBytes(4096,12) = %d, want 6144", got)
	}
	p := NewPackedArray(4096, 12)
	if p.SizeBytes() != 6144 {
		t.Fatalf("SizeBytes = %d", p.SizeBytes())
	}
}

// Property: random Set/Get sequences behave like a plain []uint64 model.
func TestPackedArrayQuick(t *testing.T) {
	f := func(seed int64, widthRaw uint8, nRaw uint8) bool {
		width := uint(widthRaw)%64 + 1
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		p := NewPackedArray(n, width)
		model := make([]uint64, n)
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				if width < 64 {
					v &= (1 << width) - 1
				}
				p.Set(i, v)
				model[i] = v
			} else if p.Get(i) != model[i] {
				return false
			}
		}
		for i := range model {
			if p.Get(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRIDList(t *testing.T) {
	l := NewRIDList(4)
	for i := 0; i < 10; i++ {
		l.Append(RID(i * 3))
	}
	if l.Len() != 10 || l.At(4) != 12 {
		t.Fatalf("Len/At = %d/%d", l.Len(), l.At(4))
	}
	if l.SizeBytes() != 40 {
		t.Fatalf("SizeBytes = %d", l.SizeBytes())
	}
	v := l.ToVector(30)
	if v.Count() != 10 || !v.Test(27) || v.Test(28) {
		t.Fatal("ToVector wrong")
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestChooseRIDs(t *testing.T) {
	// Exactly the 1/32 rule of §5.4.
	if !ChooseRIDs(10, 1000) {
		t.Fatal("10/1000 should use RIDs")
	}
	if ChooseRIDs(100, 1000) {
		t.Fatal("100/1000 should use bit-vector")
	}
	if ChooseRIDs(0, 0) {
		t.Fatal("empty input should not use RIDs")
	}
	// Boundary: hits*32 == n chooses bit-vector (not strictly less).
	if ChooseRIDs(32, 1024) {
		t.Fatal("boundary should choose bit-vector")
	}
	if !ChooseRIDs(31, 1024) {
		t.Fatal("just below boundary should choose RIDs")
	}
}
