package power

import (
	"math"
	"testing"
)

func TestEnergyModelDerivation(t *testing.T) {
	m := DefaultEnergyModel()
	// CoreFJPerCycle must be exactly the §2 figures: 51 mW at 800 MHz.
	wantFJ := DPUCore().Watts / 800e6 * FJPerJoule
	if float64(m.CoreFJPerCycle) != wantFJ {
		t.Fatalf("CoreFJPerCycle = %d, want %g", m.CoreFJPerCycle, wantFJ)
	}
	if m.Provisioned.Watts != DPU().Watts {
		t.Fatal("provisioned model is not the DPU")
	}
}

func TestActivityNeverExceedsProvisioned(t *testing.T) {
	// Full-tilt interval: 32 cores busy every cycle for one second, both
	// DDR lanes saturated at the channel peak. Activity energy must stay
	// under the 5.8 W provisioned joule budget — this is what makes the
	// provisioned perf/watt a recoverable bound on every real query.
	m := DefaultEnergyModel()
	const sec = 1.0
	cycles := int64(32 * 800e6 * sec)
	bytes := int64(12.9e9 * sec)
	b := m.Activity(cycles, bytes, bytes, sec)
	if b.TotalJoules() >= m.ProvisionedJoules(sec) {
		t.Fatalf("full-tilt activity %.3f J exceeds provisioned %.3f J",
			b.TotalJoules(), m.ProvisionedJoules(sec))
	}
	// Core share at full tilt is 32 x 51 mW.
	if got := float64(b.CoreFJ) / FJPerJoule; math.Abs(got-1.632) > 1e-9 {
		t.Fatalf("core energy = %v J, want 1.632", got)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	m := DefaultEnergyModel()
	b := m.Activity(1000, 64, 32, 2e-6)
	core, rd, wr := m.ActivityFJ(1000, 64, 32)
	if b.CoreFJ != core || b.DMSReadFJ != rd || b.DMSWriteFJ != wr {
		t.Fatal("Activity and ActivityFJ disagree")
	}
	if b.ActivityFJ() != core+rd+wr {
		t.Fatal("ActivityFJ sum")
	}
	if math.Abs(b.IdleJ-m.UncoreIdleWatts*2e-6) > 1e-18 {
		t.Fatal("idle energy")
	}
	if math.Abs(b.TotalJoules()-(b.ActivityJoules()+b.IdleJ)) > 1e-18 {
		t.Fatal("total joules")
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.ActivityFJ() != 2*b.ActivityFJ() || acc.IdleJ != 2*b.IdleJ {
		t.Fatal("Add")
	}
}

func TestPerfPerWattFromEnergyReducesToProvisioned(t *testing.T) {
	m := DefaultEnergyModel()
	// With provisioned energy as the denominator, the energy form must
	// equal the classic (time x watts) ratio.
	refSec, dpuSec := 0.1, 0.3
	classic := PerfPerWattRatio(dpuSec, m.Provisioned.Watts, refSec, SystemXServer().Watts)
	viaEnergy := PerfPerWattFromEnergy(refSec, SystemXServer(), m.ProvisionedJoules(dpuSec))
	if math.Abs(classic-viaEnergy) > 1e-12*classic {
		t.Fatalf("classic %v != energy form %v", classic, viaEnergy)
	}
	if PerfPerWattFromEnergy(1, SystemXServer(), 0) != 0 {
		t.Fatal("degenerate energy")
	}
}
