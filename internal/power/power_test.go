package power

import (
	"math"
	"testing"
)

func TestModels(t *testing.T) {
	if DPU().Watts != 5.8 {
		t.Fatal("DPU watts")
	}
	if DPUCore().Watts != 0.051 {
		t.Fatal("core watts")
	}
	// 32 cores' dynamic power is well under the SoC provisioned figure
	// (DMS, caches, uncore take the rest).
	if 32*DPUCore().Watts >= DPU().Watts {
		t.Fatal("core power exceeds SoC budget")
	}
	if SystemXServer().Watts != 290 {
		t.Fatal("server watts")
	}
	if RapidNode().Watts != 28*5.8 {
		t.Fatal("node watts")
	}
}

func TestPowerRatioMatchesPaperArithmetic(t *testing.T) {
	// §7.4: 15X perf/watt = 8.5X speedup x power ratio, so the ratio must
	// be ~1.76.
	r := PowerRatio()
	if math.Abs(r-15.0/8.5) > 0.03 {
		t.Fatalf("power ratio = %.3f, want ~%.3f", r, 15.0/8.5)
	}
}

func TestPerfPerWatt(t *testing.T) {
	if got := PerfPerWatt(580, DPU()); got != 100 {
		t.Fatalf("PerfPerWatt = %v", got)
	}
	if PerfPerWatt(1, Model{}) != 0 {
		t.Fatal("zero watts")
	}
	// A system 2x faster at half the power is 4x perf/watt.
	if got := PerfPerWattRatio(1, 50, 2, 100); got != 4 {
		t.Fatalf("ratio = %v", got)
	}
	if PerfPerWattRatio(0, 0, 1, 1) != 0 {
		t.Fatal("degenerate")
	}
	if Energy(2, DPU()) != 11.6 {
		t.Fatal("energy")
	}
}
