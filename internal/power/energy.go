package power

// Activity-based energy model: instead of charging the provisioned chip
// power for the whole run (§7.4's methodology, Energy above), energy is
// attributed to the activity the engine actually performed — dpCore cycles,
// DMS bytes over the DDR interface, and the uncore/idle floor for the
// simulated interval. Because the per-cycle and per-byte rates are integer
// femtojoules, per-operator energies reconcile *exactly* against
// whole-query energy whenever the underlying counters do: int64 sums have
// no rounding, so sum_i(cycles_i)*rate == sum_i(cycles_i*rate).
//
// The rates are chosen so that activity energy can never exceed the
// provisioned energy of the same interval: at full tilt (32 cores busy
// every cycle, both DDR lanes saturated) core power is 1.632 W, the DDR
// interface draws under 0.7 W, and the 3 W uncore floor still leaves
// headroom below the 5.8 W provisioned figure. Provisioned perf/watt is
// therefore always recoverable as a lower bound on activity perf/watt.

// FJPerJoule converts femtojoules (the integer energy unit) to joules.
const FJPerJoule = 1e15

// EnergyModel holds the activity energy rates for one DPU.
type EnergyModel struct {
	// CoreFJPerCycle is the dpCore dynamic energy per clock cycle:
	// 51 mW / 800 MHz = 63.75 pJ (paper §2 power figures).
	CoreFJPerCycle int64
	// DMSReadFJPerByte / DMSWriteFJPerByte are the DDR3 interface energy
	// per byte moved (~25 pJ/byte, writes slightly dearer for the bus
	// turnaround and precharge). At the 12.9 GB/s channel peak this is
	// ~0.32 W per direction.
	DMSReadFJPerByte  int64
	DMSWriteFJPerByte int64
	// UncoreIdleWatts is the always-on floor (DMS engines, ATE mesh, DRAM
	// refresh, clock tree) billed for the simulated elapsed interval.
	UncoreIdleWatts float64
	// Provisioned is the whole-chip provisioned power the activity model
	// is bounded by.
	Provisioned Model
}

// DefaultEnergyModel returns the calibrated DPU activity-energy model.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		CoreFJPerCycle:    63750, // 0.051 W / 800 MHz
		DMSReadFJPerByte:  24000,
		DMSWriteFJPerByte: 26000,
		UncoreIdleWatts:   3.0,
		Provisioned:       DPU(),
	}
}

// Breakdown is the activity energy of one measured interval, split by
// what consumed it. The activity components are integer femtojoules so
// decompositions reconcile exactly; the idle component is an analog power
// × time product.
type Breakdown struct {
	CoreFJ     int64   // dpCore dynamic energy
	DMSReadFJ  int64   // DDR reads
	DMSWriteFJ int64   // DDR writes
	IdleJ      float64 // uncore/idle floor over the interval
}

// ActivityFJ returns the attributable activity energy in femtojoules.
func (b Breakdown) ActivityFJ() int64 { return b.CoreFJ + b.DMSReadFJ + b.DMSWriteFJ }

// ActivityJoules returns the attributable activity energy in joules.
func (b Breakdown) ActivityJoules() float64 { return float64(b.ActivityFJ()) / FJPerJoule }

// TotalJoules returns activity plus idle energy.
func (b Breakdown) TotalJoules() float64 { return b.ActivityJoules() + b.IdleJ }

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.CoreFJ += o.CoreFJ
	b.DMSReadFJ += o.DMSReadFJ
	b.DMSWriteFJ += o.DMSWriteFJ
	b.IdleJ += o.IdleJ
}

// ActivityFJ prices raw activity counters in femtojoules.
func (m EnergyModel) ActivityFJ(cycles, readBytes, writeBytes int64) (coreFJ, readFJ, writeFJ int64) {
	return cycles * m.CoreFJPerCycle, readBytes * m.DMSReadFJPerByte, writeBytes * m.DMSWriteFJPerByte
}

// Activity prices a whole measured interval: activity counters plus the
// idle floor for the simulated elapsed seconds.
func (m EnergyModel) Activity(cycles, readBytes, writeBytes int64, simSeconds float64) Breakdown {
	core, rd, wr := m.ActivityFJ(cycles, readBytes, writeBytes)
	return Breakdown{CoreFJ: core, DMSReadFJ: rd, DMSWriteFJ: wr, IdleJ: m.UncoreIdleWatts * simSeconds}
}

// ProvisionedJoules is the §7.4 provisioned-power energy of the interval —
// the upper bound the activity model stays within.
func (m EnergyModel) ProvisionedJoules(simSeconds float64) float64 {
	return Energy(simSeconds, m.Provisioned)
}

// LinkFJPerByte is the tray interconnect energy per byte exchanged between
// nodes: NIC serdes + switch traversal at roughly 30 pJ/byte, the published
// ballpark for short-reach 10GbE-class links. Integer femtojoules like the
// DMS rates, so exchange energy decompositions reconcile exactly.
const LinkFJPerByte = 30000

// LinkEnergyFJ prices bytes moved over the tray interconnect.
func LinkEnergyFJ(bytes int64) int64 { return bytes * LinkFJPerByte }

// PerfPerWattFromEnergy converts a reference execution (time on the
// comparison system at its provisioned power) and a measured DPU energy
// into the Fig 14 perf/watt ratio: how much more work per joule the DPU
// delivered. With energy = ProvisionedJoules(dpuSeconds) this reduces to
// the provisioned-power methodology; with activity energy it can only be
// higher (the activity bound).
func PerfPerWattFromEnergy(refSeconds float64, ref Model, dpuJoules float64) float64 {
	if dpuJoules <= 0 {
		return 0
	}
	return refSeconds * ref.Watts / dpuJoules
}
