// Package power provides the provisioned-power models behind the paper's
// performance-per-watt results (§7.4). The paper reports "performance per
// watt based on the CPU power alone"; these models follow that methodology.
package power

// Model is a provisioned power figure for one processing element.
type Model struct {
	Name  string
	Watts float64
}

// DPU is one RAPID DPU SoC: 5.8 W provisioned at 40 nm (paper §2).
func DPU() Model { return Model{Name: "RAPID DPU", Watts: 5.8} }

// DPUCore is one dpCore's dynamic power at 800 MHz.
func DPUCore() Model { return Model{Name: "dpCore", Watts: 0.051} }

// XeonE5 is one Intel E5-2699 socket (145 W TDP).
func XeonE5() Model { return Model{Name: "Xeon E5-2699", Watts: 145} }

// SystemXServer is the dual-socket server System X runs on (§7.4).
func SystemXServer() Model {
	return Model{Name: "System X (2x E5-2699)", Watts: 2 * XeonE5().Watts}
}

// RapidNodeDPUs is the number of DPUs in one RAPID node tray. The paper's
// numbers reconcile at this sizing: per chip, one 5.8 W DPU runs at ~0.3x
// the speed of the 290 W dual-socket server (hence ~15x performance/watt,
// Fig 14), and a 28-DPU node is then 0.3 x 28 = 8.5x faster than the
// server — the §7.4 total speedup that decomposes into 2.5x software x
// 3.4x hardware.
const RapidNodeDPUs = 28

// RapidNode is the DPU tray compared against one System X server.
func RapidNode() Model {
	return Model{Name: "RAPID node (28 DPUs)", Watts: RapidNodeDPUs * DPU().Watts}
}

// ChipPowerRatio returns SystemXServer / DPU provisioned power (~50x): the
// factor converting the per-chip speed ratio into Fig 14's
// performance/watt.
func ChipPowerRatio() float64 { return SystemXServer().Watts / DPU().Watts }

// PowerRatio returns SystemXServer / RapidNode provisioned power.
func PowerRatio() float64 { return SystemXServer().Watts / RapidNode().Watts }

// PerfPerWatt converts a throughput (or 1/latency) into performance/watt.
func PerfPerWatt(perf float64, m Model) float64 {
	if m.Watts <= 0 {
		return 0
	}
	return perf / m.Watts
}

// PerfPerWattRatio compares two (time, power) pairs: how much more work per
// joule the first configuration delivers.
func PerfPerWattRatio(timeA, wattsA, timeB, wattsB float64) float64 {
	if timeA <= 0 || wattsA <= 0 {
		return 0
	}
	return (timeB * wattsB) / (timeA * wattsA)
}

// Energy returns joules for a run time under a model.
func Energy(seconds float64, m Model) float64 { return seconds * m.Watts }

// The x86 execution model for the hardware-attribution factor of §7.4: the
// same RAPID software running on the dual-socket E5-2699 (16 cores, ~2.3
// GHz all-core, effective IPC 2.5 on these vectorized kernels) against
// ~60 GiB/s effective memory bandwidth across both sockets. Compute and
// memory overlap (hardware prefetchers).
const (
	x86CyclesPerSec   = 16 * 2.3e9 * 2.5
	x86MemBytesPerSec = 60.0 * (1 << 30)
)

// X86ModelSeconds models the dual-socket x86 executing a workload measured
// in dpCore instruction-cycles of compute and bytes of memory traffic.
func X86ModelSeconds(cycles float64, bytes int64) float64 {
	compute := cycles / x86CyclesPerSec
	memory := float64(bytes) / x86MemBytesPerSec
	if compute > memory {
		return compute
	}
	return memory
}
