// Analytics example: window functions and set operations through SQL —
// the "other operators" of paper §5.4 (rank with PARTITION BY, analytic
// aggregates, UNION/INTERSECT/MINUS).
package main

import (
	"fmt"
	"log"

	"rapid"
)

func main() {
	db := rapid.Open()
	must(db.CreateTable("scores",
		rapid.IntCol("player"),
		rapid.StringCol("season"),
		rapid.IntCol("points"),
	))
	seasons := []string{"spring", "summer", "autumn"}
	var rows [][]rapid.Value
	for p := 0; p < 50; p++ {
		for s, season := range seasons {
			rows = append(rows, []rapid.Value{
				rapid.Int(int64(p)),
				rapid.String(season),
				rapid.Int(int64((p*37+s*101)%500 + 10)),
			})
		}
	}
	must(db.Insert("scores", rows))
	must(db.Load("scores"))

	// Rank within each season.
	res, err := db.Query(`
		SELECT season, player, points,
		       rank() OVER (PARTITION BY season ORDER BY points DESC) AS pos
		FROM scores
		ORDER BY season, pos
		LIMIT 9`)
	must(err)
	fmt.Println("season leaderboard (first 9 ranked rows):")
	fmt.Print(res.Table())

	// Running total per player across an ordered dimension.
	res, err = db.Query(`
		SELECT player, season, SUM(points) OVER (PARTITION BY player ORDER BY season) AS running
		FROM scores
		WHERE player < 2
		ORDER BY player, season`)
	must(err)
	fmt.Println("\nrunning totals:")
	fmt.Print(res.Table())

	// Set operations: players strong in spring vs summer.
	res, err = db.Query(`
		SELECT player FROM scores WHERE season = 'spring' AND points > 400
		INTERSECT
		SELECT player FROM scores WHERE season = 'summer' AND points > 400`)
	must(err)
	fmt.Printf("\nplayers above 400 in both spring and summer: %d\n", res.Rows())

	res, err = db.Query(`
		SELECT player FROM scores WHERE season = 'spring' AND points > 400
		MINUS
		SELECT player FROM scores WHERE season = 'summer' AND points > 400`)
	must(err)
	fmt.Printf("players above 400 only in spring: %d\n", res.Rows())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
