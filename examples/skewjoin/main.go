// Skew-resilient join example: exercises the three §6.4 mechanisms —
// graceful DMEM overflow (small skew), dynamic re-partitioning (large
// skew), and flow-join style probe spreading for heavy hitters — on a
// zipfian-skewed join, and cross-checks the results against a uniform
// reference execution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rapid/internal/coltypes"
	"rapid/internal/ops"
	"rapid/internal/qef"
)

func intRel(name string, cols map[string][]int64, order []string) *ops.Relation {
	rc := make([]ops.Col, 0, len(cols))
	for _, n := range order {
		rc = append(rc, ops.Col{Name: n, Type: coltypes.Int(), Data: coltypes.I64(cols[n])})
	}
	return ops.MustRelation(rc)
}

func main() {
	const nBuild = 200_000
	const nProbe = 400_000
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1.0, nBuild/4)

	buildKeys := make([]int64, nBuild)
	buildVals := make([]int64, nBuild)
	for i := range buildKeys {
		buildKeys[i] = int64(zipf.Uint64()) // heavily skewed: key 0 dominates
		buildVals[i] = int64(i)
	}
	probeKeys := make([]int64, nProbe)
	for i := range probeKeys {
		probeKeys[i] = int64(rng.Intn(nBuild / 2))
	}
	build := intRel("build", map[string][]int64{"k": buildKeys, "v": buildVals}, []string{"k", "v"})
	probe := intRel("probe", map[string][]int64{"k": probeKeys}, []string{"k"})

	ctx := qef.NewContext(qef.ModeDPU)
	spec := ops.JoinSpec{
		Type:         ops.InnerJoin,
		BuildKeys:    []int{0},
		ProbeKeys:    []int{0},
		BuildPayload: []int{1},
		ProbePayload: []int{0},
		Scheme:       ops.PartScheme{Rounds: []int{32, 4}},
		EstPartRows:  nBuild / 128, // deliberately optimistic: zipf breaks it
		SkewFactor:   3,
		Vectorized:   true,
	}
	fmt.Printf("joining %d skewed build rows x %d probe rows (zipf 1.3, scheme %s)...\n",
		nBuild, nProbe, spec.Scheme)
	out, err := ops.HashJoin(ctx, build, probe, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches: %d, simulated DPU time: %.2f ms\n", out.Rows(), ctx.SimElapsed()*1e3)

	// Reference: the same join with generous estimates and no skew
	// handling pressure.
	ctx2 := qef.NewContext(qef.ModeX86)
	ref, err := ops.HashJoin(ctx2, build, probe, ops.JoinSpec{
		Type: ops.InnerJoin, BuildKeys: []int{0}, ProbeKeys: []int{0},
		BuildPayload: []int{1}, ProbePayload: []int{0},
		Scheme: ops.PartScheme{Rounds: []int{32}}, Vectorized: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if ref.Rows() != out.Rows() {
		log.Fatalf("skew handling changed the result: %d vs %d rows", out.Rows(), ref.Rows())
	}
	fmt.Println("result matches the reference execution: skew resilience is semantics-preserving")

	// Show why it matters: the hottest key's multiplicity.
	counts := map[int64]int{}
	for _, k := range buildKeys {
		counts[k]++
	}
	maxKey, maxCount := int64(0), 0
	for k, c := range counts {
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	fmt.Printf("heaviest build key %d occurs %d times (%.1f%% of the build side)\n",
		maxKey, maxCount, 100*float64(maxCount)/nBuild)
	fmt.Printf("estimated partition capacity was %d rows; the engine overflowed to DRAM,\n", spec.EstPartRows)
	fmt.Println("re-partitioned oversized partitions, and spread single-key partitions across cores.")
}
