// Quickstart: create a table, load it into RAPID, and run analytical SQL.
package main

import (
	"fmt"
	"log"

	"rapid"
)

func main() {
	db := rapid.Open()

	// Schema: the engine stores everything fixed-width — decimals as
	// decimal-scaled binary, strings dictionary-encoded, dates as day
	// numbers (paper §4.2).
	if err := db.CreateTable("trips",
		rapid.IntCol("trip_id"),
		rapid.StringCol("city"),
		rapid.DateCol("day"),
		rapid.DecimalCol("fare", 2),
		rapid.IntCol("distance_km"),
	); err != nil {
		log.Fatal(err)
	}

	cities := []string{"Zurich", "Houston", "Tokyo", "Lisbon"}
	var rows [][]rapid.Value
	for i := 0; i < 100_000; i++ {
		rows = append(rows, []rapid.Value{
			rapid.Int(int64(i)),
			rapid.String(cities[i%len(cities)]),
			rapid.Date(2024, 1+(i%12), 1+(i%28)),
			rapid.Decimal(fmt.Sprintf("%d.%02d", 5+i%40, i%100)),
			rapid.Int(int64(1 + i%30)),
		})
	}
	if err := db.Insert("trips", rows); err != nil {
		log.Fatal(err)
	}

	// LOAD builds the columnar RAPID replica (paper §4.4). Analytical
	// queries offload to it automatically.
	if err := db.Load("trips"); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(`
		SELECT city, COUNT(*) AS trips, SUM(fare) AS revenue, AVG(distance_km) AS avg_km
		FROM trips
		WHERE day >= DATE '2024-06-01' AND fare > 10.00
		GROUP BY city
		ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Printf("\noffloaded to RAPID: %v\n", res.Offloaded())

	// The same query forced onto the simulated DPU reports the modeled
	// execution time of the 32-core, 5.8 W chip.
	dpuRes, err := db.QueryWith(`SELECT SUM(fare) FROM trips`, rapid.Options{Engine: rapid.EngineRapidDPU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUM(fare) = %s, simulated DPU time: %.3f ms\n",
		dpuRes.Get(0, 0), dpuRes.SimulatedSeconds()*1e3)
}
