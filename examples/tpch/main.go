// TPC-H example: loads the workload and runs the paper's representative
// query set on all three engines, comparing results and timings — a small-
// scale rendition of the §7.4 experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "scale factor")
	flag.Parse()

	fmt.Printf("generating and loading TPC-H at SF %.3f...\n", *sf)
	db := hostdb.New()
	start := time.Now()
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: *sf, Seed: 2018}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %.1fs\n\n", time.Since(start).Seconds())

	fmt.Printf("%-8s %10s %12s %12s %9s %8s\n",
		"query", "rows", "SystemX ms", "RAPID-sw ms", "speedup", "simDPU ms")
	for _, q := range tpch.Queries() {
		hostStart := time.Now()
		host, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceHost})
		if err != nil {
			log.Fatalf("%s (host): %v", q.Name, err)
		}
		hostMs := float64(time.Since(hostStart)) / 1e6

		rapidStart := time.Now()
		rapidSW, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
		if err != nil {
			log.Fatalf("%s (rapid): %v", q.Name, err)
		}
		rapidMs := float64(time.Since(rapidStart)) / 1e6

		dpuRes, err := db.Query(q.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU})
		if err != nil {
			log.Fatalf("%s (dpu): %v", q.Name, err)
		}

		if host.Rel.Rows() != rapidSW.Rel.Rows() {
			log.Fatalf("%s: engines disagree (%d vs %d rows)", q.Name, host.Rel.Rows(), rapidSW.Rel.Rows())
		}
		fmt.Printf("%-8s %10d %12.2f %12.2f %8.2fx %9.3f\n",
			q.Name, host.Rel.Rows(), hostMs, rapidMs, hostMs/rapidMs, dpuRes.RapidSimSeconds*1e3)
	}

	fmt.Println("\nsample result (Q1):")
	q1, _ := tpch.QueryByName("Q1")
	res, err := db.Query(q1.SQL, hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86})
	if err != nil {
		log.Fatal(err)
	}
	for c := range res.Rel.Cols {
		if c > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(res.Rel.Cols[c].Name)
	}
	fmt.Println()
	for i := 0; i < res.Rel.Rows(); i++ {
		for c := range res.Rel.Cols {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(res.Rel.Render(i, c))
		}
		fmt.Println()
	}
}
