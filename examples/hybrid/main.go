// Hybrid example: the host database as single source of truth, with
// transactional changes propagating to RAPID through SCN-stamped journals
// and background checkpointing (paper §3.3), including the admissibility
// check and host fallback.
package main

import (
	"fmt"
	"log"
	"time"

	"rapid"
)

func main() {
	db := rapid.Open()
	must(db.CreateTable("accounts",
		rapid.IntCol("id"),
		rapid.StringCol("owner"),
		rapid.DecimalCol("balance", 2),
	))
	var rows [][]rapid.Value
	for i := 0; i < 50_000; i++ {
		rows = append(rows, []rapid.Value{
			rapid.Int(int64(i)),
			rapid.String(fmt.Sprintf("owner-%04d", i%1000)),
			rapid.Decimal(fmt.Sprintf("%d.%02d", i%10000, i%100)),
		})
	}
	must(db.Insert("accounts", rows))
	must(db.Load("accounts"))

	q := `SELECT COUNT(*) AS n, SUM(balance) AS total FROM accounts`

	res, err := db.QueryWith(q, rapid.Options{Engine: rapid.EngineRapidX86})
	must(err)
	fmt.Printf("baseline: n=%s total=%s (offloaded=%v)\n", res.Get(0, 0), res.Get(0, 1), res.Offloaded())

	// A transactional change makes the replica stale: the next offload
	// attempt is inadmissible and falls back to the host engine — which
	// always sees the truth.
	must(db.Insert("accounts", [][]rapid.Value{{
		rapid.Int(99_999_999), rapid.String("late-arrival"), rapid.Decimal("123.45"),
	}}))
	res, err = db.QueryWith(q, rapid.Options{Engine: rapid.EngineRapidX86})
	must(err)
	fmt.Printf("after insert: n=%s (fell back to host: %v)\n", res.Get(0, 0), res.FellBack())

	// Strict mode surfaces the admissibility violation instead.
	if _, err := db.QueryWith(q, rapid.Options{Engine: rapid.EngineRapidX86, FailOnInadmissible: true}); err != nil {
		fmt.Println("strict mode:", err)
	}

	// The background checkpointer drains the journal; offload resumes.
	db.StartBackgroundCheckpointer(10 * time.Millisecond)
	defer db.StopBackgroundCheckpointer()
	for {
		res, err = db.QueryWith(q, rapid.Options{Engine: rapid.EngineRapidX86})
		must(err)
		if res.Offloaded() && !res.FellBack() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("after checkpoint: n=%s (offloaded=%v)\n", res.Get(0, 0), res.Offloaded())

	// Updates and deletes travel the same journal. SCN versioning keeps
	// every read consistent.
	must(db.Update("accounts", 0, 2, rapid.Decimal("0.01")))
	must(db.Delete("accounts", 1))
	must(db.Checkpoint("accounts"))
	res, err = db.QueryWith(`SELECT MIN(balance) AS lo, COUNT(*) AS n FROM accounts`,
		rapid.Options{Engine: rapid.EngineRapidX86})
	must(err)
	fmt.Printf("after update+delete: min=%s n=%s\n", res.Get(0, 0), res.Get(0, 1))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
