package rapid

import (
	"fmt"
	"strings"
	"testing"
)

func exampleDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	err := db.CreateTable("sales",
		IntCol("id"),
		StringCol("region"),
		DateCol("day"),
		DecimalCol("amount", 2),
		BoolCol("online"),
	)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	var rows [][]Value
	for i := 0; i < 2000; i++ {
		rows = append(rows, []Value{
			Int(int64(i)),
			String(regions[i%4]),
			Date(2023, 1+(i%12), 1+(i%28)),
			Decimal(fmt.Sprintf("%d.%02d", i%500, i%100)),
			Bool(i%2 == 0),
		})
	}
	if err := db.Insert("sales", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("sales"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := exampleDB(t)
	for _, engine := range []Engine{EngineAuto, EngineHost, EngineRapidDPU, EngineRapidX86} {
		res, err := db.QueryWith(`
			SELECT region, COUNT(*) AS n, SUM(amount) AS total
			FROM sales WHERE day >= DATE '2023-06-01'
			GROUP BY region ORDER BY region`, Options{Engine: engine})
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		if res.Rows() != 4 {
			t.Fatalf("engine %d: rows = %d", engine, res.Rows())
		}
		if res.Get(0, 0) != "east" { // lexicographic region order
			t.Fatalf("engine %d: first region = %s", engine, res.Get(0, 0))
		}
		if engine == EngineHost && res.Offloaded() {
			t.Fatal("EngineHost must not offload")
		}
		if engine == EngineRapidDPU {
			if !res.Offloaded() {
				t.Fatal("EngineRapidDPU must offload")
			}
			if res.SimulatedSeconds() <= 0 {
				t.Fatal("DPU engine must report simulated time")
			}
		}
	}
}

func TestPublicAPIValues(t *testing.T) {
	// Decimals normalize trailing zeros at parse time.
	if Int(5).String() != "5" || Decimal("1.50").String() != "1.5" {
		t.Fatal("value render")
	}
	if String("x").Str != "x" || !Bool(true).Equal(Bool(true)) {
		t.Fatal("value basics")
	}
	d, err := ParseDate("2024-02-29")
	if err != nil || d.String() != "2024-02-29" {
		t.Fatalf("ParseDate: %v %s", err, d)
	}
	if _, err := ParseDate("nope"); err == nil {
		t.Fatal("bad date must fail")
	}
	v, err := ParseDecimal("3.14")
	if err != nil || v.String() != "3.14" {
		t.Fatal("ParseDecimal")
	}
	if _, err := ParseDecimal("x"); err == nil {
		t.Fatal("bad decimal must fail")
	}
}

func TestPublicAPIUpdatesAndCheckpoint(t *testing.T) {
	db := exampleDB(t)
	if err := db.Insert("sales", [][]Value{{
		Int(99999), String("north"), Date(2023, 12, 31), Decimal("1000.00"), Bool(false),
	}}); err != nil {
		t.Fatal(err)
	}
	// Inadmissible offload falls back transparently...
	res, err := db.QueryWith(`SELECT COUNT(*) FROM sales`, Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack() || res.GetInt(0, 0) != 2001 {
		t.Fatalf("fallback: fellback=%v count=%d", res.FellBack(), res.GetInt(0, 0))
	}
	// ...or fails when asked to.
	if _, err := db.QueryWith(`SELECT COUNT(*) FROM sales`,
		Options{Engine: EngineRapidX86, FailOnInadmissible: true}); err == nil {
		t.Fatal("expected admissibility error")
	}
	// Checkpoint, then offload sees the row.
	if err := db.Checkpoint("sales"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.QueryWith(`SELECT COUNT(*) FROM sales`, Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Offloaded() || res2.GetInt(0, 0) != 2001 {
		t.Fatal("post-checkpoint offload broken")
	}
	// Update and delete flow through too.
	if err := db.Update("sales", 0, 3, Decimal("9.99")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("sales", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("sales"); err != nil {
		t.Fatal(err)
	}
	res3, err := db.QueryWith(`SELECT COUNT(*) FROM sales`, Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if res3.GetInt(0, 0) != 2000 {
		t.Fatalf("after delete: %d", res3.GetInt(0, 0))
	}
}

func TestResultHelpers(t *testing.T) {
	db := exampleDB(t)
	res, err := db.QueryWith(`SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region LIMIT 2`,
		Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	names := res.ColumnNames()
	if len(names) != 2 || names[0] != "region" || names[1] != "n" {
		t.Fatalf("names = %v", names)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "region") || !strings.Contains(tbl, "east") {
		t.Fatalf("table render:\n%s", tbl)
	}
	if res.Explain() == "" {
		t.Fatal("explain empty")
	}
	if res.RapidFraction() <= 0 {
		t.Fatal("rapid fraction")
	}
	if res.NumCols() != 2 {
		t.Fatal("NumCols")
	}
}

func TestSchemaErrors(t *testing.T) {
	db := Open()
	if err := db.CreateTable("bad", IntCol("a"), IntCol("a")); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if err := db.Insert("missing", nil); err == nil {
		t.Fatal("missing table must fail")
	}
	if err := db.Load("missing"); err == nil {
		t.Fatal("load missing must fail")
	}
	if _, err := db.Query("SELECT 1 FROM nowhere"); err == nil {
		t.Fatal("query on missing table must fail")
	}
}

func TestPublicAPITray(t *testing.T) {
	single := exampleDB(t)
	defer single.Close()
	want, err := single.QueryWith(
		`SELECT region, COUNT(*) AS n, SUM(amount) AS total
		 FROM sales GROUP BY region ORDER BY region`, Options{Engine: EngineHost})
	if err != nil {
		t.Fatal(err)
	}

	for _, nodes := range []int{1, 3} {
		db := OpenWith(Config{Nodes: nodes})
		if db.Tray() == nil || db.Tray().NumNodes() != nodes {
			t.Fatalf("nodes=%d: tray not attached", nodes)
		}
		if err := db.CreateTable("sales",
			IntCol("id"), StringCol("region"), DateCol("day"),
			DecimalCol("amount", 2), BoolCol("online")); err != nil {
			t.Fatal(err)
		}
		regions := []string{"north", "south", "east", "west"}
		var rows [][]Value
		for i := 0; i < 2000; i++ {
			rows = append(rows, []Value{
				Int(int64(i)), String(regions[i%4]),
				Date(2023, 1+(i%12), 1+(i%28)),
				Decimal(fmt.Sprintf("%d.%02d", i%500, i%100)),
				Bool(i%2 == 0),
			})
		}
		if err := db.Insert("sales", rows); err != nil {
			t.Fatal(err)
		}
		if err := db.Load("sales"); err != nil {
			t.Fatal(err)
		}
		for _, engine := range []Engine{EngineAuto, EngineRapidDPU, EngineRapidX86} {
			res, err := db.QueryWith(
				`SELECT region, COUNT(*) AS n, SUM(amount) AS total
				 FROM sales GROUP BY region ORDER BY region`, Options{Engine: engine})
			if err != nil {
				t.Fatalf("nodes=%d engine %d: %v", nodes, engine, err)
			}
			if !res.Offloaded() {
				t.Fatalf("nodes=%d engine %d: tray query must report offloaded", nodes, engine)
			}
			if res.Rows() != want.Rows() {
				t.Fatalf("nodes=%d engine %d: rows = %d, want %d", nodes, engine, res.Rows(), want.Rows())
			}
			for r := 0; r < want.Rows(); r++ {
				for c := 0; c < want.NumCols(); c++ {
					if res.Get(r, c) != want.Get(r, c) {
						t.Fatalf("nodes=%d engine %d: cell (%d,%d) = %s, want %s",
							nodes, engine, r, c, res.Get(r, c), want.Get(r, c))
					}
				}
			}
			if engine == EngineRapidDPU && res.SimulatedSeconds() <= 0 {
				t.Fatal("tray DPU query must report simulated time")
			}
		}
		// EngineHost bypasses the tray entirely.
		res, err := db.QueryWith(`SELECT COUNT(*) FROM sales`, Options{Engine: EngineHost})
		if err != nil {
			t.Fatal(err)
		}
		if res.Offloaded() {
			t.Fatal("EngineHost must not route to the tray")
		}
		db.Close()
	}
}

func TestPublicAPIQueryCache(t *testing.T) {
	db := exampleDB(t)
	defer db.Close()
	const q = `SELECT region, SUM(amount) FROM sales WHERE id < 1500 GROUP BY region`
	cold, err := db.QueryWith(q, Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStatus() != "miss" {
		t.Fatalf("cold CacheStatus = %q, want miss (cache is on by default)", cold.CacheStatus())
	}
	// A literal-normalized variant of the same statement hits.
	hot, err := db.QueryWith("select region, sum(amount)  from sales where id < 1500 group by region",
		Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if hot.CacheStatus() != "hit" {
		t.Fatalf("hot CacheStatus = %q, want hit", hot.CacheStatus())
	}
	for r := 0; r < cold.Rows(); r++ {
		for c := 0; c < cold.NumCols(); c++ {
			if cold.Get(r, c) != hot.Get(r, c) {
				t.Fatalf("cached cell (%d,%d) = %s, want %s", r, c, hot.Get(r, c), cold.Get(r, c))
			}
		}
	}
	// NoCache opts out per query.
	bypass, err := db.QueryWith(q, Options{Engine: EngineRapidX86, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if bypass.CacheStatus() != "bypass" {
		t.Fatalf("NoCache CacheStatus = %q, want bypass", bypass.CacheStatus())
	}
	// DML invalidates; the refreshed answer is served and re-cached.
	if err := db.Insert("sales", [][]Value{{
		Int(1), String("east"), Date(2023, 7, 1), Decimal("100.00"), Bool(true),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("sales"); err != nil {
		t.Fatal(err)
	}
	stale, err := db.QueryWith(q, Options{Engine: EngineRapidX86})
	if err != nil {
		t.Fatal(err)
	}
	if stale.CacheStatus() != "stale" {
		t.Fatalf("post-DML CacheStatus = %q, want stale", stale.CacheStatus())
	}
	st := db.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Stale == 0 || st.Bypasses == 0 {
		t.Fatalf("cache stats incomplete: %+v", st)
	}
	// Disabling the cache yields empty statuses.
	off := OpenWith(Config{Cache: CacheConfig{Disable: true}})
	defer off.Close()
	if err := off.CreateTable("t", IntCol("a")); err != nil {
		t.Fatal(err)
	}
	if err := off.Insert("t", [][]Value{{Int(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := off.Load("t"); err != nil {
		t.Fatal(err)
	}
	res, err := off.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStatus() != "" {
		t.Fatalf("disabled-cache CacheStatus = %q, want empty", res.CacheStatus())
	}
	if s := off.CacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("disabled cache reported stats %+v", s)
	}
}
