module rapid

go 1.22
