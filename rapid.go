// Package rapid is a Go reproduction of RAPID, the in-memory analytical
// query processing engine of Balkesen et al., SIGMOD 2018 ("RAPID:
// In-Memory Analytical Query Processing Engine with Extreme Performance per
// Watt").
//
// The package exposes the full system: a host RDBMS ("System X") holding
// the source-of-truth row data, and the RAPID columnar engine that
// analytical queries are offloaded to. The RAPID engine runs either as a
// cycle-accounted simulation of the paper's 32-core DPU (EngineRapidDPU) or
// natively as fast vectorized Go (EngineRapidX86 — the paper's
// software-only configuration).
//
// Quick start:
//
//	db := rapid.Open()
//	db.CreateTable("t", rapid.IntCol("id"), rapid.DecimalCol("amount", 2))
//	db.Insert("t", [][]rapid.Value{{rapid.Int(1), rapid.Decimal("9.99")}})
//	db.Load("t") // build the RAPID replica
//	res, err := db.Query(`SELECT SUM(amount) FROM t`)
package rapid

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"rapid/internal/cluster"
	"rapid/internal/coltypes"
	"rapid/internal/encoding"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/sched"
	"rapid/internal/storage"
)

// ActiveQuery is one in-flight query as reported by ActiveQueries.
type ActiveQuery = obs.ActiveQuery

// QueryRecord is one completed query's journal entry.
type QueryRecord = obs.QueryRecord

// ErrOverloaded is returned when the shared-SoC scheduler's admission queue
// is full: the query was shed, not queued. Callers should retry with backoff
// or reduce concurrency.
var ErrOverloaded = sched.ErrOverloaded

// Value is a logical cell value.
type Value = storage.Value

// Value constructors.

// Int builds an integer value.
func Int(v int64) Value { return storage.IntValue(v) }

// Decimal parses a decimal literal ("12.34"); it panics on malformed input
// (use ParseDecimal for error handling).
func Decimal(s string) Value { return storage.DecString(s) }

// ParseDecimal parses a decimal literal.
func ParseDecimal(s string) (Value, error) {
	d, err := encoding.ParseDecimal(s)
	if err != nil {
		return Value{}, err
	}
	return storage.DecValue(d), nil
}

// String builds a string value.
func String(s string) Value { return storage.StrValue(s) }

// Date builds a date value from year, month, day.
func Date(y, m, d int) Value { return storage.DateValue(y, m, d) }

// ParseDate parses "YYYY-MM-DD".
func ParseDate(s string) (Value, error) { return storage.ParseDate(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return storage.BoolValue(b) }

// Column declares a table column.
type Column = storage.ColumnDef

// Column constructors.

// IntCol declares a 64-bit integer column.
func IntCol(name string) Column { return Column{Name: name, Type: coltypes.Int()} }

// DecimalCol declares a fixed-point decimal column with the given scale
// (digits after the point); stored DSB-encoded (paper §4.2).
func DecimalCol(name string, scale int) Column {
	return Column{Name: name, Type: coltypes.Decimal(int8(scale))}
}

// DateCol declares a date column (stored as day numbers).
func DateCol(name string) Column { return Column{Name: name, Type: coltypes.Date()} }

// StringCol declares a dictionary-encoded string column.
func StringCol(name string) Column { return Column{Name: name, Type: coltypes.String()} }

// BoolCol declares a boolean column.
func BoolCol(name string) Column { return Column{Name: name, Type: coltypes.Bool()} }

// Engine selects where a query executes.
type Engine int

const (
	// EngineAuto uses the cost-based offload decision (paper §3.1).
	EngineAuto Engine = iota
	// EngineHost forces the System X row engine.
	EngineHost
	// EngineRapidDPU forces RAPID on the simulated DPU (cycle-accounted).
	EngineRapidDPU
	// EngineRapidX86 forces RAPID's software-only native execution.
	EngineRapidX86
)

// Options tunes query execution.
type Options struct {
	Engine Engine
	// FailOnInadmissible errors instead of falling back when pending
	// changes have not been propagated to RAPID (paper §3.3).
	FailOnInadmissible bool
	// NoCache bypasses the query cache for this query: no lookup, no
	// publication, no singleflight participation.
	NoCache bool
}

// SchedulerConfig tunes the shared-SoC scheduler every offloaded query of a
// DB executes on. The zero value gives sensible defaults (32 virtual
// dpCores, 8 concurrent queries, 64 queued).
type SchedulerConfig struct {
	// Workers is the number of shared virtual dpCores.
	Workers int
	// MaxConcurrent bounds the queries executing at once.
	MaxConcurrent int
	// MaxQueued bounds the admission queue; beyond it queries fail fast
	// with ErrOverloaded.
	MaxQueued int
	// DMEMBudgetBytes bounds the aggregate scratchpad reservation of the
	// admitted query set.
	DMEMBudgetBytes int64
}

// CacheConfig tunes the two-tier query cache: a plan cache over
// literal-normalized SQL templates and an SCN-validated result cache with
// singleflight collapse, shared by the host engine and the tray. The zero
// value enables the cache with defaults.
type CacheConfig struct {
	// Disable turns the query cache off entirely.
	Disable bool
	// MaxResultBytes bounds the resident result-cache payload bytes
	// (LRU-evicted beyond it). Default 64 MiB.
	MaxResultBytes int64
	// MinCostNs is the admission floor: results whose execution took less
	// wall time than this are not worth the budget. Default 0 (admit all).
	MinCostNs int64
	// PlanEntries bounds the plan cache entry count. Default 256.
	PlanEntries int
}

// Config tunes a database instance.
type Config struct {
	Scheduler SchedulerConfig
	// Cache tunes the query cache, which is on by default.
	Cache CacheConfig
	// Nodes >= 1 attaches a multi-node RAPID tray (paper §7.4): offloaded
	// queries execute sharded across that many SoC nodes, with exchange
	// operators over a modeled interconnect and a coordinator merge. Load
	// builds the per-node shards alongside the single-node replica. 0 (the
	// default) disables the tray.
	Nodes int
	// ReplicateMaxRows tunes tray auto-sharding: tables at or below this
	// many rows replicate to every node, larger ones hash-shard on column
	// 0. 0 takes the default (64); negative shards everything.
	ReplicateMaxRows int
}

// DB is a RAPID-accelerated database: the System X host plus loaded RAPID
// replicas, and optionally a multi-node tray.
type DB struct {
	host *hostdb.Database
	tray *cluster.Tray
}

// Open creates an empty database.
func Open() *DB { return OpenWith(Config{}) }

// OpenWith creates an empty database with explicit configuration.
func OpenWith(cfg Config) *DB {
	sc := cfg.Scheduler
	scfg := sched.Config{
		Workers:         sc.Workers,
		MaxConcurrent:   sc.MaxConcurrent,
		MaxQueued:       sc.MaxQueued,
		DMEMBudgetBytes: sc.DMEMBudgetBytes,
	}
	db := &DB{host: hostdb.NewWithConfig(nil, scfg)}
	if !cfg.Cache.Disable {
		db.host.EnableQueryCache(qcache.Config{
			MaxResultBytes: cfg.Cache.MaxResultBytes,
			MinCostNs:      cfg.Cache.MinCostNs,
			PlanEntries:    cfg.Cache.PlanEntries,
		})
	}
	if cfg.Nodes >= 1 {
		// cluster.New only fails on Nodes < 1, checked above. The tray
		// shares the host's registry so /metrics exposes one fleet-wide
		// surface (host, scheduler, per-node rapid_* and net_* series).
		db.tray, _ = cluster.New(db.host, cluster.Config{
			Nodes:            cfg.Nodes,
			ReplicateMaxRows: cfg.ReplicateMaxRows,
			Sched:            scfg,
			Metrics:          db.host.Metrics(),
		})
	}
	return db
}

// Close stops the database's background machinery (checkpointer, the
// scheduler's worker pool, and the tray's per-node pools). Queries issued
// after Close fail.
func (db *DB) Close() {
	if db.tray != nil {
		db.tray.Close()
	}
	db.host.Close()
}

// Host exposes the underlying host database (advanced use).
func (db *DB) Host() *hostdb.Database { return db.host }

// Tray exposes the multi-node tray, nil unless Config.Nodes >= 1
// (advanced use: shard inspection, per-node schedulers, net telemetry).
func (db *DB) Tray() *cluster.Tray { return db.tray }

// Metrics returns the telemetry registry. Host, scheduler and (when a tray
// is attached) per-node engine series all land in this one registry.
func (db *DB) Metrics() *obs.Registry { return db.host.Metrics() }

// QueryJournal returns the query journal: a bounded ring of per-query
// completion records (fingerprint, mode, nodes, rows, cycles, energy,
// queue wait, outcome) with cumulative outcome counters, a slow-query
// threshold and JSONL export. Tray queries journal here too.
func (db *DB) QueryJournal() *obs.Journal { return db.host.QueryJournal() }

// ActiveQueries returns a snapshot of the queries in flight right now —
// single-node and tray executions alike — sorted by QueryID.
func (db *DB) ActiveQueries() []ActiveQuery { return db.host.ActiveQueries() }

// CacheStats is a point-in-time snapshot of the query-cache counters.
type CacheStats = qcache.Snapshot

// CacheStats returns the query-cache counters (hits, misses, stale
// invalidations, singleflight shares, evictions, resident bytes, plan-tier
// hits). The zero snapshot when the cache is disabled.
func (db *DB) CacheStats() CacheStats {
	if c := db.host.QueryCache(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// CancelQuery cancels the in-flight query with the given ID (as shown by
// ActiveQueries or a Result's QueryID). It returns false when no such
// query is running. The canceled query returns context.Canceled and
// journals a "canceled" outcome.
func (db *DB) CancelQuery(id uint64) bool { return db.host.CancelQuery(id) }

// ServeTelemetry starts an HTTP exporter on addr ("127.0.0.1:0" picks a
// free port): Prometheus text on /metrics, the live active-query table and
// recent journal records on /debug/queries, and — when pprof is true — the
// Go runtime profiles on /debug/pprof/*. Close the returned server to stop
// it.
func (db *DB) ServeTelemetry(addr string, pprof bool) (*obs.TelemetryServer, error) {
	return db.host.ServeTelemetryWith(addr, pprof)
}

// CreateTable registers a table.
func (db *DB) CreateTable(name string, cols ...Column) error {
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return err
	}
	_, err = db.host.CreateTable(name, schema)
	return err
}

// Insert appends rows to a table. Changes are journaled for RAPID
// propagation when the table is loaded.
func (db *DB) Insert(table string, rows [][]Value) error {
	_, err := db.host.Insert(table, rows)
	return err
}

// Update changes a single cell by host row index.
func (db *DB) Update(table string, row, col int, val Value) error {
	_, err := db.host.Update(table, row, col, val)
	return err
}

// Delete removes a row by host row index.
func (db *DB) Delete(table string, row int) error {
	_, err := db.host.Delete(table, row)
	return err
}

// Load builds the RAPID columnar replica of a table (the LOAD command of
// paper §4.4) and, when a tray is attached, its per-node shard replicas.
// Queries can only offload fragments whose tables are loaded.
func (db *DB) Load(table string) error {
	if _, err := db.host.Load(table, hostdb.LoadOptions{ScanThreads: 4}); err != nil {
		return err
	}
	if db.tray != nil {
		return db.tray.Load(table, nil)
	}
	return nil
}

// Checkpoint propagates pending changes of a table to its RAPID replica.
func (db *DB) Checkpoint(table string) error { return db.host.Checkpoint(table) }

// StartBackgroundCheckpointer launches periodic change propagation
// (paper §3.3); stop it with StopBackgroundCheckpointer.
func (db *DB) StartBackgroundCheckpointer(interval time.Duration) {
	db.host.StartBackgroundCheckpointer(interval)
}

// StopBackgroundCheckpointer stops background propagation.
func (db *DB) StopBackgroundCheckpointer() { db.host.StopBackgroundCheckpointer() }

// Query runs a SQL query with the default (cost-based) engine choice.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryWith(sql, Options{})
}

// QueryCtx runs a SQL query observing ctx: cancellation and deadlines take
// effect while the query waits for admission and at every tile boundary of
// execution, returning ctx.Err() promptly.
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	return db.QueryWithCtx(ctx, sql, Options{})
}

// QueryWith runs a SQL query with explicit options.
func (db *DB) QueryWith(sql string, opts Options) (*Result, error) {
	return db.QueryWithCtx(context.Background(), sql, opts)
}

// trayUnrecoverable reports errors the host must not paper over with a
// fallback: the caller canceled, or admission control shed the query.
func trayUnrecoverable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, sched.ErrOverloaded) || errors.Is(err, sched.ErrClosed)
}

// queryTray routes an offloadable query to the tray and adapts the
// distributed result. EngineAuto falls back to the host row engine when
// distribution itself fails (e.g. a referenced table was never loaded).
func (db *DB) queryTray(ctx context.Context, sql string, opts Options) (*Result, error) {
	mode := qef.ModeX86
	if opts.Engine == EngineRapidDPU {
		mode = qef.ModeDPU
	}
	start := time.Now()
	res, err := db.tray.QueryCtx(ctx, sql, cluster.QueryOptions{Mode: mode, NoCache: opts.NoCache})
	if err != nil {
		if opts.Engine == EngineAuto && !trayUnrecoverable(err) {
			r, herr := db.host.QueryCtx(ctx, sql, hostdb.QueryOptions{Mode: hostdb.ForceHost})
			if herr != nil {
				return nil, herr
			}
			r.FellBack = true
			return &Result{r: r}, nil
		}
		return nil, err
	}
	explain := res.Explain
	if res.Analyze != "" {
		explain = res.Analyze
	}
	return &Result{r: &hostdb.QueryResult{
		Rel:             res.Rel,
		QueryID:         res.QueryID,
		Offloaded:       true,
		RapidWall:       time.Since(start),
		RapidSimSeconds: res.SimSeconds,
		Explain:         explain,
		QueueWait:       res.QueueWait,
		Cache:           res.Cache,
		CyclesSaved:     res.CyclesSaved,
		EnergySavedNJ:   res.EnergySavedNJ,
	}}, nil
}

// QueryWithCtx runs a SQL query with explicit options, observing ctx.
func (db *DB) QueryWithCtx(ctx context.Context, sql string, opts Options) (*Result, error) {
	if db.tray != nil && opts.Engine != EngineHost {
		return db.queryTray(ctx, sql, opts)
	}
	qo := hostdb.QueryOptions{
		FailOnInadmissible: opts.FailOnInadmissible,
		NoCache:            opts.NoCache,
		RapidMode:          qef.ModeDPU,
	}
	switch opts.Engine {
	case EngineHost:
		qo.Mode = hostdb.ForceHost
	case EngineRapidDPU:
		qo.Mode = hostdb.ForceOffload
		qo.RapidMode = qef.ModeDPU
	case EngineRapidX86:
		qo.Mode = hostdb.ForceOffload
		qo.RapidMode = qef.ModeX86
	default:
		qo.Mode = hostdb.CostBased
		qo.RapidMode = qef.ModeX86
	}
	r, err := db.host.QueryCtx(ctx, sql, qo)
	if err != nil {
		return nil, err
	}
	return &Result{r: r}, nil
}

// Result is a query result.
type Result struct {
	r *hostdb.QueryResult
}

// Rows returns the result row count.
func (r *Result) Rows() int { return r.r.Rel.Rows() }

// NumCols returns the column count.
func (r *Result) NumCols() int { return r.r.Rel.NumCols() }

// ColumnNames returns the output column names.
func (r *Result) ColumnNames() []string {
	names := make([]string, r.NumCols())
	for i := range names {
		names[i] = r.r.Rel.Cols[i].Name
	}
	return names
}

// Get renders cell (row, col) as a string.
func (r *Result) Get(row, col int) string { return r.r.Rel.Render(row, col) }

// GetInt returns the raw encoded integer of cell (row, col).
func (r *Result) GetInt(row, col int) int64 { return r.r.Rel.Cols[col].Data.Get(row) }

// Offloaded reports whether the query ran on RAPID.
func (r *Result) Offloaded() bool { return r.r.Offloaded }

// FellBack reports whether RAPID execution was attempted but fell back to
// the host engine.
func (r *Result) FellBack() bool { return r.r.FellBack }

// RapidFraction returns the share of elapsed time spent inside RAPID
// (the Fig 15 metric).
func (r *Result) RapidFraction() float64 { return r.r.RapidFraction() }

// SimulatedSeconds returns the DPU-simulated execution time (EngineRapidDPU
// only; 0 otherwise).
func (r *Result) SimulatedSeconds() float64 { return r.r.RapidSimSeconds }

// QueueWait returns the time the query spent in the shared-SoC scheduler's
// admission queue (zero for host-engine queries and immediate admissions).
func (r *Result) QueueWait() time.Duration { return r.r.QueueWait }

// QueryID returns the fleet-wide identifier the query was journaled under
// (usable with CancelQuery while running, and to find its journal record).
func (r *Result) QueryID() uint64 { return r.r.QueryID }

// CacheStatus reports the query's result-cache interaction: "hit", "miss",
// "stale" (an entry existed but was invalidated by intervening DML or
// checkpointing), "bypass" (Options.NoCache or an uncacheable statement),
// or "" when the cache is disabled.
func (r *Result) CacheStatus() string { return r.r.Cache }

// CyclesSaved returns the dpCore cycles a cache hit avoided re-spending
// (the producing execution's cost; 0 on anything but a hit).
func (r *Result) CyclesSaved() int64 { return r.r.CyclesSaved }

// EnergySavedNJ returns the nanojoules a cache hit avoided re-spending
// (0 on anything but a hit).
func (r *Result) EnergySavedNJ() int64 { return r.r.EnergySavedNJ }

// Explain returns the bound logical plan.
func (r *Result) Explain() string { return r.r.Explain }

// Table renders the whole result as an aligned text table.
func (r *Result) Table() string {
	var sb strings.Builder
	names := r.ColumnNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, r.Rows())
	for i := 0; i < r.Rows(); i++ {
		cells[i] = make([]string, len(names))
		for c := range names {
			cells[i][c] = r.Get(i, c)
			if len(cells[i][c]) > widths[c] {
				widths[c] = len(cells[i][c])
			}
		}
	}
	writeRow := func(vals []string) {
		for c, v := range vals {
			if c > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[c], v)
		}
		sb.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
