// rapid-cli is an interactive SQL shell over the RAPID engine, preloaded
// with the TPC-H-style workload.
//
// Usage:
//
//	rapid-cli [-sf 0.005] [-engine auto|host|dpu|x86]
//
// Shell commands: \q quit, \tables, \engine <mode>, \explain <sql>,
// \queries (list TPC-H queries), \run <name> (run one by name).
// Prefix any query with EXPLAIN ANALYZE to get the per-operator profile
// (cycles, DMS bytes, rows/tiles) of the RAPID execution.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor to preload")
	engine := flag.String("engine", "auto", "execution engine: auto|host|dpu|x86")
	flag.Parse()

	fmt.Printf("loading TPC-H at SF %.3f...\n", *sf)
	db := hostdb.New()
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: *sf, Seed: 2018}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ready. tables:", strings.Join(tpch.TableNames(), ", "))
	fmt.Println(`enter SQL terminated by ';', or \q to quit, \queries for samples`)
	fmt.Println(`prefix a query with EXPLAIN ANALYZE for a per-operator profile`)

	opts := optsFor(*engine)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("rapid> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch {
			case trimmed == `\q`:
				return
			case trimmed == `\tables`:
				for _, n := range tpch.TableNames() {
					t, _ := db.Table(n)
					fmt.Printf("  %-10s %8d rows\n", n, t.Rows())
				}
			case trimmed == `\queries`:
				for _, q := range tpch.Queries() {
					fmt.Println("  " + q.Name)
				}
			case strings.HasPrefix(trimmed, `\engine `):
				opts = optsFor(strings.TrimPrefix(trimmed, `\engine `))
				fmt.Println("engine set")
			case strings.HasPrefix(trimmed, `\run `):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, `\run `))
				if q, ok := tpch.QueryByName(name); ok {
					exec(db, q.SQL, opts, false)
				} else {
					fmt.Println("unknown query; try \\queries")
				}
			case strings.HasPrefix(trimmed, `\explain `):
				exec(db, strings.TrimPrefix(trimmed, `\explain `), opts, true)
			default:
				fmt.Println(`unknown command; \q \tables \queries \engine \run \explain`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			exec(db, buf.String(), opts, false)
			buf.Reset()
			prompt()
		}
	}
}

func optsFor(engine string) hostdb.QueryOptions {
	switch engine {
	case "host":
		return hostdb.QueryOptions{Mode: hostdb.ForceHost}
	case "dpu":
		return hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}
	case "x86":
		return hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}
	default:
		return hostdb.QueryOptions{Mode: hostdb.CostBased, RapidMode: qef.ModeX86}
	}
}

func exec(db *hostdb.Database, sql string, opts hostdb.QueryOptions, explainOnly bool) {
	start := time.Now()
	res, err := db.Query(sql, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if explainOnly {
		fmt.Print(res.Explain)
		return
	}
	rel := res.Rel
	const maxRows = 40
	n := rel.Rows()
	show := n
	if show > maxRows {
		show = maxRows
	}
	for c := range rel.Cols {
		if c > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(rel.Cols[c].Name)
	}
	fmt.Println()
	for i := 0; i < show; i++ {
		for c := range rel.Cols {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(rel.Render(i, c))
		}
		fmt.Println()
	}
	if show < n {
		fmt.Printf("... (%d more rows)\n", n-show)
	}
	where := "host engine"
	if res.Offloaded {
		where = "RAPID"
		if res.FellBack {
			where = "host (fell back)"
		}
	} else if res.FellBack {
		where = "host (fell back)"
	}
	fmt.Printf("%d rows in %.1f ms via %s", n, float64(time.Since(start))/1e6, where)
	if res.RapidSimSeconds > 0 {
		fmt.Printf(" (simulated DPU time: %.3f ms)", res.RapidSimSeconds*1e3)
	}
	fmt.Println()
	if res.Profile != nil {
		fmt.Println()
		fmt.Print(res.Profile.Format())
	}
}
