// rapid-cli is an interactive SQL shell over the RAPID engine, preloaded
// with the TPC-H-style workload.
//
// Usage:
//
//	rapid-cli [-sf 0.005] [-engine auto|host|dpu|x86] [-metrics addr]
//	          [-trace out.json]
//
// Shell commands: \q quit, \tables, \engine <mode>, \explain <sql>,
// \queries (list TPC-H queries), \run <name> (run one by name),
// \ps (active queries), \kill <id> (cancel by QueryID), \journal [n]
// (recent query-journal records), \cache (query-cache counters),
// \nocache <sql> (run one statement bypassing the cache).
// Prefix any query with EXPLAIN ANALYZE to get the per-operator profile
// (cycles, DMS bytes, energy, rows/tiles) of the RAPID execution.
// -metrics serves the observability endpoint on addr while the shell runs
// (Prometheus on /metrics, live queries on /debug/queries; -pprof adds
// /debug/pprof/*); -trace accumulates every profiled query into a Chrome
// trace-event JSON (load in chrome://tracing or ui.perfetto.dev) written
// on exit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/qcache"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor to preload")
	engine := flag.String("engine", "auto", "execution engine: auto|host|dpu|x86")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9090)")
	pprof := flag.Bool("pprof", false, "expose Go runtime profiles on /debug/pprof/* of the -metrics endpoint")
	tracePath := flag.String("trace", "", "write profiled queries as Chrome trace-event JSON to this file on exit")
	cacheOn := flag.Bool("cache", true, "enable the two-tier query cache (\\cache shows stats; \\nocache <sql> bypasses)")
	flag.Parse()

	fmt.Printf("loading TPC-H at SF %.3f...\n", *sf)
	db := hostdb.New()
	if err := tpch.PopulateHostDB(db, tpch.Config{ScaleFactor: *sf, Seed: 2018}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var cache *qcache.Cache
	if *cacheOn {
		cache = db.EnableQueryCache(qcache.Config{})
	}
	if *metricsAddr != "" {
		srv, err := db.ServeTelemetryWith(*metricsAddr, *pprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s\n", srv.URL())
	}
	if *tracePath != "" {
		trace = obs.NewTraceBuilder()
		defer func() {
			if trace.Empty() {
				return
			}
			data, err := trace.JSON()
			if err == nil {
				err = os.WriteFile(*tracePath, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				return
			}
			fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
		}()
	}
	fmt.Println("ready. tables:", strings.Join(tpch.TableNames(), ", "))
	fmt.Println(`enter SQL terminated by ';', or \q to quit, \queries for samples`)
	fmt.Println(`prefix a query with EXPLAIN ANALYZE for a per-operator profile`)

	opts := optsFor(*engine)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("rapid> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch {
			case trimmed == `\q`:
				return
			case trimmed == `\tables`:
				for _, n := range tpch.TableNames() {
					t, _ := db.Table(n)
					fmt.Printf("  %-10s %8d rows\n", n, t.Rows())
				}
			case trimmed == `\queries`:
				for _, q := range tpch.Queries() {
					fmt.Println("  " + q.Name)
				}
			case strings.HasPrefix(trimmed, `\engine `):
				opts = optsFor(strings.TrimPrefix(trimmed, `\engine `))
				fmt.Println("engine set")
			case strings.HasPrefix(trimmed, `\run `):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, `\run `))
				if q, ok := tpch.QueryByName(name); ok {
					exec(db, q.SQL, opts, false)
				} else {
					fmt.Println("unknown query; try \\queries")
				}
			case strings.HasPrefix(trimmed, `\explain `):
				exec(db, strings.TrimPrefix(trimmed, `\explain `), opts, true)
			case trimmed == `\cache`:
				printCache(cache)
			case strings.HasPrefix(trimmed, `\nocache `):
				o := opts
				o.NoCache = true
				exec(db, strings.TrimPrefix(trimmed, `\nocache `), o, false)
			case trimmed == `\ps`:
				printActive(db)
			case strings.HasPrefix(trimmed, `\kill `):
				killQuery(db, strings.TrimSpace(strings.TrimPrefix(trimmed, `\kill `)))
			case trimmed == `\journal` || strings.HasPrefix(trimmed, `\journal `):
				n := 10
				if rest := strings.TrimSpace(strings.TrimPrefix(trimmed, `\journal`)); rest != "" {
					if v, err := strconv.Atoi(rest); err == nil && v > 0 {
						n = v
					}
				}
				printJournal(db, n)
			default:
				fmt.Println(`unknown command; \q \tables \queries \engine \run \explain \ps \kill \journal \cache \nocache`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			exec(db, buf.String(), opts, false)
			buf.Reset()
			prompt()
		}
	}
}

// trace, when non-nil, accumulates every profiled query for -trace.
var trace *obs.TraceBuilder
var traceSeq int

// oneLine collapses SQL to a single truncated line for table output.
func oneLine(sql string, max int) string {
	s := strings.Join(strings.Fields(sql), " ")
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}

// printActive renders the \ps table: the live query set, sorted by ID.
func printActive(db *hostdb.Database) {
	qs := db.ActiveQueries()
	if len(qs) == 0 {
		fmt.Println("no active queries")
		return
	}
	fmt.Printf("  %-6s %-6s %-10s %-5s %-10s %s\n", "id", "mode", "phase", "nodes", "elapsed", "sql")
	for _, q := range qs {
		fmt.Printf("  %-6d %-6s %-10s %-5d %-10s %s\n",
			q.ID, q.Mode, q.Phase, q.Nodes, q.Elapsed.Round(time.Millisecond), oneLine(q.SQL, 48))
	}
}

// killQuery cancels an active query by its \ps / journal ID.
func killQuery(db *hostdb.Database, arg string) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil {
		fmt.Println("usage: \\kill <id>")
		return
	}
	if db.CancelQuery(id) {
		fmt.Printf("query %d canceled\n", id)
	} else {
		fmt.Printf("no active query with id %d\n", id)
	}
}

// printCache renders the \cache table: the shared query-cache counters.
func printCache(cache *qcache.Cache) {
	if cache == nil {
		fmt.Println("query cache disabled (-cache=false)")
		return
	}
	st := cache.Stats()
	fmt.Printf("  result: hits=%d misses=%d stale=%d shared=%d bypasses=%d rejects=%d\n",
		st.Hits, st.Misses, st.Stale, st.Shared, st.Bypasses, st.Rejects)
	fmt.Printf("  plan:   hits=%d misses=%d drops=%d\n", st.PlanHits, st.PlanMisses, st.PlanDrops)
	fmt.Printf("  space:  %d entries, %d bytes resident (evictions=%d invalidations=%d)\n",
		st.ResidentEntries, st.ResidentBytes, st.Evictions, st.Invalidations)
}

// printJournal renders the newest n query-journal records, oldest first.
func printJournal(db *hostdb.Database, n int) {
	j := db.QueryJournal()
	recs := j.Tail(n)
	if len(recs) == 0 {
		fmt.Println("journal empty")
		return
	}
	fmt.Printf("  %-6s %-8s %-6s %-5s %8s %10s %6s %s\n", "id", "outcome", "mode", "nodes", "rows", "wall", "slow", "sql")
	for _, r := range recs {
		slow := ""
		if r.Slow {
			slow = "SLOW"
		}
		fmt.Printf("  %-6d %-8s %-6s %-5d %8d %10s %6s %s\n",
			r.ID, r.Outcome, r.Mode, r.Nodes, r.Rows,
			time.Duration(r.WallNs).Round(time.Microsecond), slow, oneLine(r.SQL, 40))
	}
	fmt.Printf("  total=%d ok=%d shed=%d canceled=%d error=%d slow=%d\n",
		j.Total(), j.OutcomeCount(obs.OutcomeOK), j.OutcomeCount(obs.OutcomeShed),
		j.OutcomeCount(obs.OutcomeCanceled), j.OutcomeCount(obs.OutcomeError), j.SlowCount())
}

func optsFor(engine string) hostdb.QueryOptions {
	switch engine {
	case "host":
		return hostdb.QueryOptions{Mode: hostdb.ForceHost}
	case "dpu":
		return hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU}
	case "x86":
		return hostdb.QueryOptions{Mode: hostdb.ForceOffload, RapidMode: qef.ModeX86}
	default:
		return hostdb.QueryOptions{Mode: hostdb.CostBased, RapidMode: qef.ModeX86}
	}
}

func exec(db *hostdb.Database, sql string, opts hostdb.QueryOptions, explainOnly bool) {
	start := time.Now()
	res, err := db.Query(sql, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if explainOnly {
		fmt.Print(res.Explain)
		return
	}
	rel := res.Rel
	const maxRows = 40
	n := rel.Rows()
	show := n
	if show > maxRows {
		show = maxRows
	}
	for c := range rel.Cols {
		if c > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(rel.Cols[c].Name)
	}
	fmt.Println()
	for i := 0; i < show; i++ {
		for c := range rel.Cols {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(rel.Render(i, c))
		}
		fmt.Println()
	}
	if show < n {
		fmt.Printf("... (%d more rows)\n", n-show)
	}
	where := "host engine"
	if res.Offloaded {
		where = "RAPID"
		if res.FellBack {
			where = "host (fell back)"
		}
	} else if res.FellBack {
		where = "host (fell back)"
	}
	if res.Cache == "hit" {
		where += " result cache"
	}
	fmt.Printf("%d rows in %.1f ms via %s", n, float64(time.Since(start))/1e6, where)
	if res.Cache != "" && res.Cache != "hit" {
		fmt.Printf(" [cache %s]", res.Cache)
	}
	if res.RapidSimSeconds > 0 {
		fmt.Printf(" (simulated DPU time: %.3f ms)", res.RapidSimSeconds*1e3)
	}
	fmt.Println()
	if res.Profile != nil {
		fmt.Println()
		fmt.Print(res.Profile.Format())
		if trace != nil {
			traceSeq++
			name := strings.Join(strings.Fields(sql), " ")
			if len(name) > 60 {
				name = name[:60] + "..."
			}
			trace.AddQuery(fmt.Sprintf("q%d: %s", traceSeq, name), res.Profile)
		}
	} else if res.ProfileNote != "" {
		fmt.Println(res.ProfileNote)
	}
}
