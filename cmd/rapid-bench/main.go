// rapid-bench regenerates every table and figure of the paper's evaluation
// section (§7) and prints them as text tables. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rapid-bench [-sf 0.01] [-reps 3] [-micro-rows 2097152] [-skip-tpch]
//	            [-profile out.json] [-trace out.json] [-metrics addr]
//	            [-metrics-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rapid/internal/bench"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the system benchmarks")
	reps := flag.Int("reps", 3, "repetitions per query (best-of)")
	microRows := flag.Int("micro-rows", 1<<21, "input rows for micro-benchmarks")
	skipTPCH := flag.Bool("skip-tpch", false, "run only the micro-benchmarks")
	ablations := flag.Bool("ablations", true, "run the design-choice ablation studies")
	profilePath := flag.String("profile", "", "write per-operator ModeDPU profiles of every TPC-H query as JSON to this file")
	tracePath := flag.String("trace", "", "write ModeDPU profiles of every TPC-H query as Chrome trace-event JSON to this file")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address while the suite runs")
	metricsOut := flag.String("metrics-out", "", "write the final Prometheus metrics exposition to this file")
	flag.Parse()

	fmt.Println("RAPID reproduction benchmark suite")
	fmt.Println()

	for _, t := range []*bench.Table{
		bench.RunFig4(),
		bench.RunFig8(*microRows),
		bench.RunFig9(),
		bench.RunFilterMicro(*microRows),
		bench.RunFig10(*microRows),
		bench.RunFig11(*microRows / 16),
		bench.RunFig12(*microRows / 16),
		bench.RunFig13(*microRows / 16),
	} {
		fmt.Println(t)
	}

	if *ablations {
		for _, t := range bench.RunAblations(*microRows) {
			fmt.Println(t)
		}
	}

	if *skipTPCH && *profilePath == "" && *tracePath == "" {
		return
	}
	fmt.Printf("building TPC-H workload at SF %.3f...\n", *sf)
	start := time.Now()
	db, err := bench.SetupTPCH(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %.1fs\n\n", time.Since(start).Seconds())
	if *metricsAddr != "" {
		srv, err := db.ServeTelemetry(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s\n\n", srv.URL())
	}
	if !*skipTPCH {
		runs, err := bench.RunQueries(db, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queries:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunFig16(runs))
		fmt.Println(bench.RunFig15(runs))
		fmt.Println(bench.RunFig14(runs))
	}
	if *profilePath != "" || *tracePath != "" {
		if err := writeProfiles(db, *profilePath, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		if *profilePath != "" {
			fmt.Printf("per-operator profiles written to %s\n", *profilePath)
		}
		if *tracePath != "" {
			fmt.Printf("Chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
		}
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(db.Metrics().RenderPrometheus()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics exposition written to %s\n", *metricsOut)
	}
}

// writeProfiles runs every TPC-H query once in ModeDPU with profiling on,
// checks the accounting and energy invariants, and dumps the per-operator
// summaries (profilePath) and the Chrome trace (tracePath); either path may
// be empty.
func writeProfiles(db *hostdb.Database, profilePath, tracePath string) error {
	type entry struct {
		Query   string      `json:"query"`
		Profile obs.Summary `json:"profile"`
	}
	opts := hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
		FailOnInadmissible: true, Profile: true,
	}
	var out []entry
	trace := obs.NewTraceBuilder()
	for _, q := range tpch.Queries() {
		res, err := db.Query(q.SQL, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		if err := res.Profile.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: invariants: %w", q.Name, err)
		}
		if err := res.Profile.CheckEnergyInvariants(power.DefaultEnergyModel()); err != nil {
			return fmt.Errorf("%s: energy invariants: %w", q.Name, err)
		}
		out = append(out, entry{Query: q.Name, Profile: res.Profile.Summary()})
		trace.AddQuery(q.Name, res.Profile)
	}
	if tracePath != "" {
		data, err := trace.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return err
		}
	}
	if profilePath == "" {
		return nil
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(profilePath, append(data, '\n'), 0o644)
}
