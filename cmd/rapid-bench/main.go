// rapid-bench regenerates every table and figure of the paper's evaluation
// section (§7) and prints them as text tables. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rapid-bench [-sf 0.01] [-reps 3] [-micro-rows 2097152] [-skip-tpch]
//	            [-clients 0] [-client-ops 8]
//	            [-profile out.json] [-trace out.json] [-metrics addr]
//	            [-metrics-out file]
//
// With -clients N > 0 the suite adds a concurrency ladder: closed-loop
// fleets of 1, 4, 16, ..., N clients drive the shared-SoC scheduler with the
// TPC-H mix and report throughput, tail latency and shed queries per rung.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rapid/internal/bench"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the system benchmarks")
	reps := flag.Int("reps", 3, "repetitions per query (best-of)")
	microRows := flag.Int("micro-rows", 1<<21, "input rows for micro-benchmarks")
	skipTPCH := flag.Bool("skip-tpch", false, "run only the micro-benchmarks")
	ablations := flag.Bool("ablations", true, "run the design-choice ablation studies")
	profilePath := flag.String("profile", "", "write per-operator ModeDPU profiles of every TPC-H query as JSON to this file")
	tracePath := flag.String("trace", "", "write ModeDPU profiles of every TPC-H query as Chrome trace-event JSON to this file")
	clients := flag.Int("clients", 0, "run the concurrency ladder up to this many simultaneous clients (0 = off)")
	clientOps := flag.Int("client-ops", 8, "queries each client of the concurrency ladder issues")
	trayNodes := flag.String("tray-nodes", "", "comma-separated tray node counts for the multi-node scaling experiment (e.g. 1,2,4,8; empty = off)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address while the suite runs")
	metricsOut := flag.String("metrics-out", "", "write the final Prometheus metrics exposition to this file")
	flag.Parse()

	fmt.Println("RAPID reproduction benchmark suite")
	fmt.Println()

	for _, t := range []*bench.Table{
		bench.RunFig4(),
		bench.RunFig8(*microRows),
		bench.RunFig9(),
		bench.RunFilterMicro(*microRows),
		bench.RunFig10(*microRows),
		bench.RunFig11(*microRows / 16),
		bench.RunFig12(*microRows / 16),
		bench.RunFig13(*microRows / 16),
	} {
		fmt.Println(t)
	}

	if *ablations {
		for _, t := range bench.RunAblations(*microRows) {
			fmt.Println(t)
		}
	}

	if *skipTPCH && *profilePath == "" && *tracePath == "" && *clients == 0 && *trayNodes == "" {
		return
	}
	fmt.Printf("building TPC-H workload at SF %.3f...\n", *sf)
	start := time.Now()
	db, err := bench.SetupTPCH(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %.1fs\n\n", time.Since(start).Seconds())
	if *metricsAddr != "" {
		srv, err := db.ServeTelemetry(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s\n\n", srv.URL())
	}
	if !*skipTPCH {
		runs, err := bench.RunQueries(db, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queries:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunFig16(runs))
		fmt.Println(bench.RunFig15(runs))
		fmt.Println(bench.RunFig14(runs))
	}
	if *clients > 0 {
		t := &bench.Table{
			Title:   "Concurrency ladder: closed-loop TPC-H mix on the shared-SoC scheduler",
			Headers: []string{"clients", "queries/sec", "p50 ms", "p99 ms", "shed"},
		}
		for _, n := range []int{1, 4, 16, 64} {
			if n > *clients {
				break
			}
			res, err := bench.RunConcurrent(db, n, *clientOps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "concurrent:", err)
				os.Exit(1)
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", res.QPS()),
				fmt.Sprintf("%.3f", float64(res.P50)/1e6),
				fmt.Sprintf("%.3f", float64(res.P99)/1e6),
				fmt.Sprint(res.Shed))
		}
		t.AddNote("per-query latency includes admission queue wait; shed = queries rejected with ErrOverloaded")
		fmt.Println(t)
	}
	if *trayNodes != "" {
		var counts []int
		for _, s := range strings.Split(*trayNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "tray-nodes: bad node count %q\n", s)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		runs, err := bench.RunScaling(db, counts, []string{"Q1", "Q6", "Q12", "Q14"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunScalingTable(runs))
	}
	if *profilePath != "" || *tracePath != "" {
		if err := writeProfiles(db, *profilePath, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		if *profilePath != "" {
			fmt.Printf("per-operator profiles written to %s\n", *profilePath)
		}
		if *tracePath != "" {
			fmt.Printf("Chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
		}
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(db.Metrics().RenderPrometheus()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics exposition written to %s\n", *metricsOut)
	}
}

// writeProfiles runs every TPC-H query once in ModeDPU with profiling on,
// checks the accounting and energy invariants, and dumps the per-operator
// summaries (profilePath) and the Chrome trace (tracePath); either path may
// be empty.
func writeProfiles(db *hostdb.Database, profilePath, tracePath string) error {
	type entry struct {
		Query   string      `json:"query"`
		Profile obs.Summary `json:"profile"`
	}
	opts := hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
		FailOnInadmissible: true, Profile: true,
	}
	var out []entry
	trace := obs.NewTraceBuilder()
	for _, q := range tpch.Queries() {
		res, err := db.Query(q.SQL, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		if err := res.Profile.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: invariants: %w", q.Name, err)
		}
		if err := res.Profile.CheckEnergyInvariants(power.DefaultEnergyModel()); err != nil {
			return fmt.Errorf("%s: energy invariants: %w", q.Name, err)
		}
		out = append(out, entry{Query: q.Name, Profile: res.Profile.Summary()})
		trace.AddQuery(q.Name, res.Profile)
	}
	if tracePath != "" {
		data, err := trace.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return err
		}
	}
	if profilePath == "" {
		return nil
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(profilePath, append(data, '\n'), 0o644)
}
