// rapid-bench regenerates every table and figure of the paper's evaluation
// section (§7) and prints them as text tables. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rapid-bench [-sf 0.01] [-reps 3] [-micro-rows 2097152] [-skip-tpch]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rapid/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the system benchmarks")
	reps := flag.Int("reps", 3, "repetitions per query (best-of)")
	microRows := flag.Int("micro-rows", 1<<21, "input rows for micro-benchmarks")
	skipTPCH := flag.Bool("skip-tpch", false, "run only the micro-benchmarks")
	ablations := flag.Bool("ablations", true, "run the design-choice ablation studies")
	flag.Parse()

	fmt.Println("RAPID reproduction benchmark suite")
	fmt.Println()

	for _, t := range []*bench.Table{
		bench.RunFig4(),
		bench.RunFig8(*microRows),
		bench.RunFig9(),
		bench.RunFilterMicro(*microRows),
		bench.RunFig10(*microRows),
		bench.RunFig11(*microRows / 16),
		bench.RunFig12(*microRows / 16),
		bench.RunFig13(*microRows / 16),
	} {
		fmt.Println(t)
	}

	if *ablations {
		for _, t := range bench.RunAblations(*microRows) {
			fmt.Println(t)
		}
	}

	if *skipTPCH {
		return
	}
	fmt.Printf("building TPC-H workload at SF %.3f...\n", *sf)
	start := time.Now()
	db, err := bench.SetupTPCH(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %.1fs\n\n", time.Since(start).Seconds())
	runs, err := bench.RunQueries(db, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queries:", err)
		os.Exit(1)
	}
	fmt.Println(bench.RunFig16(runs))
	fmt.Println(bench.RunFig15(runs))
	fmt.Println(bench.RunFig14(runs))
}
