// rapid-bench regenerates every table and figure of the paper's evaluation
// section (§7) and prints them as text tables. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rapid-bench [-sf 0.01] [-reps 3] [-micro-rows 2097152] [-skip-tpch]
//	            [-clients 0] [-client-ops 8] [-cache] [-cache-warm 32]
//	            [-profile out.json] [-trace out.json]
//	            [-tray-trace out.json] [-tray-trace-nodes 4]
//	            [-metrics addr] [-pprof] [-metrics-out file]
//
// With -clients N > 0 the suite adds a concurrency ladder: closed-loop
// fleets of 1, 4, 16, ..., N clients drive the shared-SoC scheduler with the
// TPC-H mix and report throughput, tail latency and shed queries per rung.
// -tray-trace runs the distributed TPC-H queries on a tray and writes one
// stitched Chrome trace: a lane per node plus the coordinator, with flow
// events for every cross-node exchange stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rapid/internal/bench"
	"rapid/internal/cluster"
	"rapid/internal/hostdb"
	"rapid/internal/obs"
	"rapid/internal/power"
	"rapid/internal/qef"
	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the system benchmarks")
	reps := flag.Int("reps", 3, "repetitions per query (best-of)")
	microRows := flag.Int("micro-rows", 1<<21, "input rows for micro-benchmarks")
	skipTPCH := flag.Bool("skip-tpch", false, "run only the micro-benchmarks")
	ablations := flag.Bool("ablations", true, "run the design-choice ablation studies")
	profilePath := flag.String("profile", "", "write per-operator ModeDPU profiles of every TPC-H query as JSON to this file")
	tracePath := flag.String("trace", "", "write ModeDPU profiles of every TPC-H query as Chrome trace-event JSON to this file")
	clients := flag.Int("clients", 0, "run the concurrency ladder up to this many simultaneous clients (0 = off)")
	clientOps := flag.Int("client-ops", 8, "queries each client of the concurrency ladder issues")
	trayNodes := flag.String("tray-nodes", "", "comma-separated tray node counts for the multi-node scaling experiment (e.g. 1,2,4,8; empty = off)")
	trayTracePath := flag.String("tray-trace", "", "write a stitched distributed Chrome trace of the tray TPC-H queries to this file")
	trayTraceNodes := flag.Int("tray-trace-nodes", 4, "tray width for -tray-trace")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address while the suite runs")
	pprofOn := flag.Bool("pprof", false, "expose Go runtime profiles on /debug/pprof/* of the -metrics endpoint")
	metricsOut := flag.String("metrics-out", "", "write the final Prometheus metrics exposition to this file")
	pruning := flag.Bool("pruning", false, "run the zone-map pruning effectiveness experiment (shipdate-clustered lineitem, pruning on vs off)")
	cacheBench := flag.Bool("cache", false, "run the query-cache repeated-workload experiment (cold vs warm latency, hit rate, energy saved)")
	cacheWarm := flag.Int("cache-warm", 32, "warm re-issues per query for -cache")
	flag.Parse()

	fmt.Println("RAPID reproduction benchmark suite")
	fmt.Println()

	for _, t := range []*bench.Table{
		bench.RunFig4(),
		bench.RunFig8(*microRows),
		bench.RunFig9(),
		bench.RunFilterMicro(*microRows),
		bench.RunFig10(*microRows),
		bench.RunFig11(*microRows / 16),
		bench.RunFig12(*microRows / 16),
		bench.RunFig13(*microRows / 16),
	} {
		fmt.Println(t)
	}

	if *ablations {
		for _, t := range bench.RunAblations(*microRows) {
			fmt.Println(t)
		}
	}

	if *pruning {
		fmt.Printf("building shipdate-clustered TPC-H workload at SF %.3f...\n", *sf)
		cdb, err := bench.SetupTPCHClustered(*sf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pruning setup:", err)
			os.Exit(1)
		}
		runs, err := bench.RunPruning(cdb, []string{"Q6", "Q14"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pruning:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunPruningTable(runs))
		cdb.Close()
	}

	if *cacheBench {
		fmt.Printf("building cached TPC-H workload at SF %.3f...\n", *sf)
		cdb, err := bench.SetupTPCHCached(*sf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cache setup:", err)
			os.Exit(1)
		}
		runs, err := bench.RunCache(cdb, []string{"Q1", "Q6", "Q12", "Q14"}, *cacheWarm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cache:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunCacheTable(runs, *cacheWarm))
		cdb.Close()
	}

	if *skipTPCH && *profilePath == "" && *tracePath == "" && *clients == 0 && *trayNodes == "" && *trayTracePath == "" {
		return
	}
	fmt.Printf("building TPC-H workload at SF %.3f...\n", *sf)
	start := time.Now()
	db, err := bench.SetupTPCH(*sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %.1fs\n\n", time.Since(start).Seconds())
	if *metricsAddr != "" {
		srv, err := db.ServeTelemetryWith(*metricsAddr, *pprofOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s\n\n", srv.URL())
	}
	if !*skipTPCH {
		runs, err := bench.RunQueries(db, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queries:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunFig16(runs))
		fmt.Println(bench.RunFig15(runs))
		fmt.Println(bench.RunFig14(runs))
	}
	if *clients > 0 {
		t := &bench.Table{
			Title:   "Concurrency ladder: closed-loop TPC-H mix on the shared-SoC scheduler",
			Headers: []string{"clients", "queries/sec", "p50 ms", "p99 ms", "shed"},
		}
		for _, n := range []int{1, 4, 16, 64} {
			if n > *clients {
				break
			}
			res, err := bench.RunConcurrent(db, n, *clientOps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "concurrent:", err)
				os.Exit(1)
			}
			t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", res.QPS()),
				fmt.Sprintf("%.3f", float64(res.P50)/1e6),
				fmt.Sprintf("%.3f", float64(res.P99)/1e6),
				fmt.Sprint(res.Shed))
		}
		t.AddNote("per-query latency includes admission queue wait; shed = queries rejected with ErrOverloaded")
		fmt.Println(t)
	}
	if *trayNodes != "" {
		var counts []int
		for _, s := range strings.Split(*trayNodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "tray-nodes: bad node count %q\n", s)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		runs, err := bench.RunScaling(db, counts, []string{"Q1", "Q6", "Q12", "Q14"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RunScalingTable(runs))
	}
	if *trayTracePath != "" {
		if err := writeTrayTrace(db, *trayTracePath, *trayTraceNodes); err != nil {
			fmt.Fprintln(os.Stderr, "tray-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("stitched distributed trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *trayTracePath)
	}
	if *profilePath != "" || *tracePath != "" {
		if err := writeProfiles(db, *profilePath, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		if *profilePath != "" {
			fmt.Printf("per-operator profiles written to %s\n", *profilePath)
		}
		if *tracePath != "" {
			fmt.Printf("Chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
		}
	}
	if t := histogramSummary(db); len(t.Rows) > 0 {
		fmt.Println(t)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(db.Metrics().RenderPrometheus()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics exposition written to %s\n", *metricsOut)
	}
}

// histogramSummary renders p50/p99 of the fleet histograms accumulated over
// the whole run (empty histograms are skipped).
func histogramSummary(db *hostdb.Database) *bench.Table {
	t := &bench.Table{
		Title:   "Latency and energy distributions (whole run, bucketed estimates)",
		Headers: []string{"histogram", "count", "p50", "p99"},
	}
	for _, e := range []struct {
		name, unit string
		scale      float64
	}{
		{"hostdb_query_seconds", "ms", 1e3},
		{"sched_queue_wait_seconds", "ms", 1e3},
		{"rapid_query_cycles", "Mcycles", 1e-6},
		{"rapid_query_energy_nanojoules", "mJ", 1e-6},
	} {
		v := db.Metrics().Histogram(e.name).View()
		if v.Count == 0 {
			continue
		}
		t.AddRow(e.name, fmt.Sprint(v.Count),
			fmt.Sprintf("%.3f %s", v.Quantile(0.50)*e.scale, e.unit),
			fmt.Sprintf("%.3f %s", v.Quantile(0.99)*e.scale, e.unit))
	}
	return t
}

// writeTrayTrace runs the distributed TPC-H queries on an n-node tray in
// ModeDPU with trace recording on, stitches every execution into one Chrome
// trace — a coordinator lane plus one lane per node, flow events for every
// cross-node exchange stream — and writes it to path.
func writeTrayTrace(db *hostdb.Database, path string, nodes int) error {
	tray, err := cluster.New(db, cluster.Config{Nodes: nodes})
	if err != nil {
		return err
	}
	defer tray.Close()
	for _, name := range tpch.TableNames() {
		if err := tray.Load(name, nil); err != nil {
			return fmt.Errorf("load %s: %w", name, err)
		}
	}
	b := obs.NewTraceBuilder()
	for _, qname := range []string{"Q1", "Q6", "Q12", "Q14"} {
		q, ok := tpch.QueryByName(qname)
		if !ok {
			return fmt.Errorf("unknown query %s", qname)
		}
		res, err := tray.Query(q.SQL, cluster.QueryOptions{Mode: qef.ModeDPU, Trace: true})
		if err != nil {
			return fmt.Errorf("%s: %w", qname, err)
		}
		b.AddDistributedQuery(qname, qef.ModeDPU.String(), nodes, res.Trace)
	}
	data, err := b.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// writeProfiles runs every TPC-H query once in ModeDPU with profiling on,
// checks the accounting and energy invariants, and dumps the per-operator
// summaries (profilePath) and the Chrome trace (tracePath); either path may
// be empty.
func writeProfiles(db *hostdb.Database, profilePath, tracePath string) error {
	type entry struct {
		Query   string      `json:"query"`
		Profile obs.Summary `json:"profile"`
	}
	opts := hostdb.QueryOptions{
		Mode: hostdb.ForceOffload, RapidMode: qef.ModeDPU,
		FailOnInadmissible: true, Profile: true,
	}
	var out []entry
	trace := obs.NewTraceBuilder()
	for _, q := range tpch.Queries() {
		res, err := db.Query(q.SQL, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		if err := res.Profile.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: invariants: %w", q.Name, err)
		}
		if err := res.Profile.CheckEnergyInvariants(power.DefaultEnergyModel()); err != nil {
			return fmt.Errorf("%s: energy invariants: %w", q.Name, err)
		}
		out = append(out, entry{Query: q.Name, Profile: res.Profile.Summary()})
		trace.AddQuery(q.Name, res.Profile)
	}
	if tracePath != "" {
		data, err := trace.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return err
		}
	}
	if profilePath == "" {
		return nil
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(profilePath, append(data, '\n'), 0o644)
}
