// rapid-fuzz is the standalone soak driver for the qgen differential and
// metamorphic harness: it generates seeded random schemas, data and SQL,
// executes every query on the hostdb row interpreter, RAPID ModeX86, RAPID
// ModeDPU and an alternate partitioned/RLE layout, and stops (or keeps
// counting with -keep-going) on the first mismatch, printing a replayable
// minimized reproducer.
//
// Usage:
//
//	rapid-fuzz [-n 10000] [-seed 1] [-parallel 0] [-nodes ""] [-keep-going]
//	           [-quiet]
//
// With -parallel K > 1, every generated query is additionally executed on K
// concurrent sessions against the shared databases and each concurrent
// result is compared to a serial host-oracle run, so shared-SoC scheduler
// bugs surface as replayable reproducers.
//
// With -nodes (e.g. -nodes 1,2,4,8), every query also runs on multi-node
// trays with all scenario tables hash-sharded, and each tray's result bag is
// differentially compared against the host oracle — the distributed planner,
// exchange operators and partial-aggregation merge get the same soak as the
// single-node engine.
//
// Any failure is replayable with:
//
//	go test ./internal/qgen -run Differential -qgen.seed=<seed>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rapid/internal/qgen"
)

func main() {
	n := flag.Int("n", 10000, "number of generated queries to check")
	seed := flag.Int64("seed", 1, "master seed; fixed seed = identical run")
	parallel := flag.Int("parallel", 0, "also run each query on K concurrent sessions and compare lanes (0 = off)")
	nodes := flag.String("nodes", "", "comma-separated tray node counts for distributed differential lanes (e.g. 1,2,4,8; empty = off)")
	keepGoing := flag.Bool("keep-going", false, "report every mismatch instead of stopping at the first")
	quiet := flag.Bool("quiet", false, "suppress the periodic progress line")
	flag.Parse()

	var nodeCounts []int
	if *nodes != "" {
		for _, s := range strings.Split(*nodes, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || c < 1 {
				fmt.Fprintf(os.Stderr, "-nodes: bad node count %q\n", s)
				os.Exit(2)
			}
			nodeCounts = append(nodeCounts, c)
		}
	}

	const perScenario = 20
	start := time.Now()
	executed, rejected, failures := 0, 0, 0

	report := func(m *qgen.Mismatch, r *qgen.Runner) {
		m.Minimized = r.Minimize(m.SQL)
		fmt.Println(m.Reproducer())
		failures++
		if !*keepGoing {
			os.Exit(1)
		}
	}

	for scen := 0; executed < *n; scen++ {
		g := qgen.New(*seed + int64(scen)*1_000_003)
		r, err := qgen.NewRunner(g.NewScenario())
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %d: %v\n", scen, err)
			os.Exit(2)
		}
		if len(nodeCounts) > 0 {
			if err := r.EnableTrays(nodeCounts); err != nil {
				fmt.Fprintf(os.Stderr, "scenario %d: %v\n", scen, err)
				os.Exit(2)
			}
		}
		for i := 0; i < perScenario && executed < *n; i++ {
			q := g.NextQuery()
			if m := r.Check(q); m != nil {
				report(m, r)
			}
			if m := r.CheckTLP(q); m != nil {
				report(m, r)
			}
			if m := r.CheckTautology(q); m != nil {
				report(m, r)
			}
			if *parallel > 1 {
				if m := r.CheckConcurrent(q.SQL(), *parallel); m != nil {
					report(m, r)
				}
			}
			executed++
		}
		rejected += r.Rejected
		r.Close()
		if !*quiet && scen%50 == 49 {
			fmt.Printf("%8d queries, %d scenarios, %d rejected, %d failures, %.1fs\n",
				executed, scen+1, rejected, failures, time.Since(start).Seconds())
		}
	}

	fmt.Printf("done: %d queries checked (%d rejected consistently, %d failures) in %.1fs\n",
		executed, rejected, failures, time.Since(start).Seconds())
	if failures > 0 {
		os.Exit(1)
	}
}
