// tpchgen writes the TPC-H-style dataset as CSV files, one per table.
//
// Usage:
//
//	tpchgen [-sf 0.01] [-seed 2018] [-skew 0] [-dir ./tpch-data]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rapid/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	seed := flag.Int64("seed", 2018, "generator seed")
	skew := flag.Float64("skew", 0, "zipf parameter for lineitem part keys (0 = uniform)")
	dir := flag.String("dir", "./tpch-data", "output directory")
	flag.Parse()

	if err := run(*sf, *seed, *skew, *dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(sf float64, seed int64, skew float64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: seed, SkewZipf: skew})
	schemas := tpch.Schemas()
	for _, name := range tpch.TableNames() {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		schema := schemas[name]
		header := make([]string, schema.NumCols())
		for i := range header {
			header[i] = schema.Col(i).Name
		}
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		for _, row := range data.Tables[name] {
			rec := make([]string, len(row))
			for i, v := range row {
				rec[i] = v.String()
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(data.Tables[name]))
	}
	return nil
}
